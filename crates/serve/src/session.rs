//! Inference sessions: gradient-stripped network replicas with
//! forward-only pooled scratch, sharded over a `PartitionedPool`.

use crate::batcher::{add_stats, Batch};
use crate::engine::Backend;
use easgd_nn::Network;
use easgd_tensor::par::{with_pool, PartitionedPool};
use easgd_tensor::{InferScratch, ScratchStats, Tensor};

/// One serving replica: a [`Network`] with its gradient arena stripped
/// (half the training replica's memory; calling `forward_backward`
/// panics), a forward-only [`InferScratch`], and an owned logits
/// tensor. After one warm-up dispatch per batch size, `infer` performs
/// zero pooled allocations — the serving analogue of the training
/// step's steady state (DESIGN.md §11).
pub struct InferSession {
    net: Network,
    scratch: InferScratch,
    logits: Tensor,
    sample_len: usize,
}

impl InferSession {
    /// Wraps a built network as a serving replica, dropping its
    /// gradient arena.
    pub fn new(mut net: Network) -> Self {
        net.strip_gradients();
        let sample_len = net.input_shape().iter().product();
        let classes = net.num_classes();
        Self {
            net,
            scratch: InferScratch::new(),
            logits: Tensor::zeros([1, classes]),
            sample_len,
        }
    }

    /// Pixels per sample (the flattened input shape).
    pub fn sample_len(&self) -> usize {
        self.sample_len
    }

    /// Runs eval-mode forward on a ragged batch of `batch` samples
    /// packed in `pixels`, returning the `[batch × classes]` logits.
    ///
    /// # Panics
    /// Panics unless `pixels.len() == batch * sample_len`.
    pub fn infer(&mut self, batch: usize, pixels: &[f32]) -> &[f32] {
        self.net
            .infer_from_slice(batch, pixels, &mut self.logits, &mut self.scratch);
        self.logits.as_slice()
    }

    /// Logits of the most recent [`infer`](Self::infer) call.
    pub fn logits(&self) -> &[f32] {
        self.logits.as_slice()
    }

    /// Pooled allocation counters of this replica's scratch.
    pub fn stats(&self) -> ScratchStats {
        self.scratch.stats()
    }
}

/// `shards` independent replicas, one per [`PartitionedPool`] group:
/// the in-process analogue of the paper's one-worker-per-device layout,
/// reused here so batch dispatches on different shards never contend
/// for a worker thread.
pub struct ReplicaSet {
    sessions: Vec<InferSession>,
    part: PartitionedPool,
}

impl ReplicaSet {
    /// One replica per entry of `replicas`, sharded over a fresh
    /// partitioned pool with `replicas.len()` groups.
    ///
    /// # Panics
    /// Panics if `replicas` is empty.
    pub fn new(replicas: Vec<Network>) -> Self {
        assert!(!replicas.is_empty(), "need at least one replica");
        let part = PartitionedPool::new(replicas.len());
        Self {
            sessions: replicas.into_iter().map(InferSession::new).collect(),
            part,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.sessions.len()
    }

    /// A shard's session, for logits inspection after a dispatch.
    pub fn session(&self, shard: usize) -> &InferSession {
        &self.sessions[shard]
    }
}

impl Backend for ReplicaSet {
    /// Runs the batch on `shard`'s replica, inside that shard's pool
    /// group so concurrent shards keep disjoint worker threads.
    fn run_batch(&mut self, shard: usize, batch: &Batch, pixels: &[f32]) {
        let Self { sessions, part } = self;
        with_pool(part.group(shard), || {
            let _ = sessions[shard].infer(batch.len(), pixels);
        });
    }

    fn stats(&self) -> ScratchStats {
        self.sessions
            .iter()
            .map(InferSession::stats)
            .fold(ScratchStats::default(), add_stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easgd_nn::NetworkBuilder;

    fn tiny_net(seed: u64) -> Network {
        NetworkBuilder::new([1, 6, 6])
            .conv2d(2, 3, 1, 1)
            .relu()
            .maxpool(2, 2)
            .flatten()
            .dense(10)
            .build(seed)
    }

    #[test]
    fn session_matches_unstripped_forward_bitwise() {
        let mut reference = tiny_net(7);
        let mut session = InferSession::new(tiny_net(7));
        let pixels: Vec<f32> = (0..2 * 36).map(|i| (i as f32).sin()).collect();
        let x = Tensor::from_vec([2, 1, 6, 6], pixels.clone());
        let want = reference.forward(&x, false);
        let got = session.infer(2, &pixels);
        assert_eq!(got, want.as_slice());
    }

    #[test]
    fn ragged_sizes_are_zero_alloc_once_warm() {
        let mut session = InferSession::new(tiny_net(3));
        let pixels = vec![0.25f32; 4 * 36];
        // Warm both sizes the ragged schedule will use.
        let _ = session.infer(4, &pixels);
        let _ = session.infer(1, &pixels[..36]);
        let warm = session.stats();
        for _ in 0..6 {
            let _ = session.infer(4, &pixels);
            let _ = session.infer(1, &pixels[..36]);
            let _ = session.infer(3, &pixels[..3 * 36]);
        }
        let delta = session.stats().since(&warm);
        assert_eq!(delta.allocations(), 0, "warm ragged inference allocated");
        assert!(delta.reused > 0);
    }

    #[test]
    fn replica_set_shards_agree_on_equal_seeds() {
        let mut set = ReplicaSet::new(vec![tiny_net(11), tiny_net(11)]);
        let pixels: Vec<f32> = (0..36).map(|i| (i as f32).cos()).collect();
        let a: Vec<f32> = {
            let ReplicaSet { sessions, part } = &mut set;
            with_pool(part.group(0), || sessions[0].infer(1, &pixels).to_vec())
        };
        let b: Vec<f32> = {
            let ReplicaSet { sessions, part } = &mut set;
            with_pool(part.group(1), || sessions[1].infer(1, &pixels).to_vec())
        };
        assert_eq!(a, b, "equal-seed replicas must serve identical logits");
    }
}
