//! The in-memory dataset container and batch sampler.

use easgd_tensor::{Rng, Tensor};

/// One training batch: images `[B, …shape]` and integer labels.
#[derive(Clone, Debug)]
pub struct Batch {
    /// Batched images.
    pub images: Tensor,
    /// One label per sample.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Batch size.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// A labelled image dataset held in memory.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name (diagnostics).
    pub name: String,
    /// Per-sample shape, e.g. `[1, 28, 28]`.
    pub shape: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
    images: Vec<f32>,
    labels: Vec<usize>,
}

impl Dataset {
    /// Wraps raw storage.
    ///
    /// # Panics
    /// Panics if buffer sizes are inconsistent or a label is out of range.
    pub fn new(
        name: impl Into<String>,
        shape: Vec<usize>,
        classes: usize,
        images: Vec<f32>,
        labels: Vec<usize>,
    ) -> Self {
        let per: usize = shape.iter().product();
        assert!(per > 0, "empty sample shape");
        assert_eq!(
            images.len(),
            labels.len() * per,
            "images/labels size mismatch"
        );
        assert!(
            labels.iter().all(|&l| l < classes),
            "label out of range for {classes} classes"
        );
        Self {
            name: name.into(),
            shape,
            classes,
            images,
            labels,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Elements per sample.
    pub fn sample_len(&self) -> usize {
        self.shape.iter().product()
    }

    /// Dataset size in bytes (f32 images) — what the KNL partitioning
    /// experiment (§6.2) feeds its MCDRAM capacity check.
    pub fn size_bytes(&self) -> usize {
        self.images.len() * 4
    }

    /// The raw image of sample `i`.
    pub fn image(&self, i: usize) -> &[f32] {
        let per = self.sample_len();
        &self.images[i * per..(i + 1) * per]
    }

    /// Label of sample `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// All images as one tensor `[N, …shape]` (for whole-set evaluation).
    pub fn as_tensor(&self) -> Tensor {
        let mut dims = vec![self.len()];
        dims.extend_from_slice(&self.shape);
        Tensor::from_vec(dims, self.images.clone())
    }

    /// Normalizes in place to zero mean and unit variance over the whole
    /// set (Algorithm 1 line 1: “Normalize X … E(X) = 0, σ(X) = 1”).
    ///
    /// No-op on an empty or constant dataset (σ would be 0).
    pub fn normalize(&mut self) {
        if self.images.is_empty() {
            return;
        }
        let n = self.images.len() as f64;
        let mean = self.images.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = self
            .images
            .iter()
            .map(|&x| (x as f64 - mean) * (x as f64 - mean))
            .sum::<f64>()
            / n;
        if var <= f64::EPSILON {
            return;
        }
        let inv_std = (1.0 / var.sqrt()) as f32;
        let mean = mean as f32;
        for x in &mut self.images {
            *x = (*x - mean) * inv_std;
        }
    }

    /// Draws a batch of `b` samples uniformly at random with replacement
    /// (Algorithm 1 line 8: “randomly picks b samples”).
    ///
    /// # Panics
    /// Panics on an empty dataset or `b == 0`.
    pub fn sample_batch(&self, rng: &mut Rng, b: usize) -> Batch {
        assert!(b > 0, "batch size must be > 0");
        assert!(!self.is_empty(), "cannot sample from an empty dataset");
        let per = self.sample_len();
        let mut images = Vec::with_capacity(b * per);
        let mut labels = Vec::with_capacity(b);
        for _ in 0..b {
            let i = rng.below(self.len());
            images.extend_from_slice(self.image(i));
            labels.push(self.labels[i]);
        }
        let mut dims = vec![b];
        dims.extend_from_slice(&self.shape);
        Batch {
            images: Tensor::from_vec(dims, images),
            labels,
        }
    }

    /// Splits off the first `n` samples into a new dataset (typically a
    /// held-out test set), leaving the rest here.
    ///
    /// # Panics
    /// Panics if `n > len()`.
    pub fn split_off_front(&mut self, n: usize) -> Dataset {
        assert!(n <= self.len(), "split beyond dataset size");
        let per = self.sample_len();
        let head_images = self.images.drain(..n * per).collect();
        let head_labels = self.labels.drain(..n).collect();
        Dataset {
            name: format!("{}-head", self.name),
            shape: self.shape.clone(),
            classes: self.classes,
            images: head_images,
            labels: head_labels,
        }
    }

    /// Partitions the dataset into `p` contiguous shards (data
    /// parallelism, §2.3: “the dataset is partitioned into P parts and
    /// each machine only gets one part”). Shard sizes differ by at most 1.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn partition(&self, p: usize) -> Vec<Dataset> {
        assert!(p > 0, "cannot partition into 0 shards");
        let per = self.sample_len();
        let n = self.len();
        let mut shards = Vec::with_capacity(p);
        let base = n / p;
        let extra = n % p;
        let mut start = 0;
        for i in 0..p {
            let count = base + usize::from(i < extra);
            let end = start + count;
            shards.push(Dataset {
                name: format!("{}-shard{i}", self.name),
                shape: self.shape.clone(),
                classes: self.classes,
                images: self.images[start * per..end * per].to_vec(),
                labels: self.labels[start..end].to_vec(),
            });
            start = end;
        }
        shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        // 6 samples of shape [2], labels 0..2 repeating.
        let images = (0..12).map(|i| i as f32).collect();
        let labels = vec![0, 1, 2, 0, 1, 2];
        Dataset::new("t", vec![2], 3, images, labels)
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.len(), 6);
        assert_eq!(d.sample_len(), 2);
        assert_eq!(d.image(2), &[4.0, 5.0]);
        assert_eq!(d.label(2), 2);
        assert_eq!(d.size_bytes(), 48);
    }

    #[test]
    fn normalize_gives_zero_mean_unit_var() {
        let mut d = tiny();
        d.normalize();
        let n = 12.0;
        let mean: f32 = d.images.iter().sum::<f32>() / n;
        let var: f32 = d
            .images
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / n;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn normalize_constant_dataset_is_noop() {
        let mut d = Dataset::new("c", vec![2], 1, vec![3.0; 8], vec![0; 4]);
        d.normalize();
        assert!(d.images.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn sample_batch_draws_valid_pairs() {
        let d = tiny();
        let mut rng = Rng::new(1);
        let b = d.sample_batch(&mut rng, 10);
        assert_eq!(b.len(), 10);
        assert_eq!(b.images.shape().dims(), &[10, 2]);
        // Each drawn image must match its label's source sample.
        for (s, &label) in b.labels.iter().enumerate() {
            let img = &b.images.as_slice()[s * 2..(s + 1) * 2];
            let found = (0..d.len()).any(|i| d.label(i) == label && d.image(i) == img);
            assert!(found);
        }
    }

    #[test]
    fn partition_covers_everything_once() {
        let d = tiny();
        let shards = d.partition(4);
        assert_eq!(shards.len(), 4);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, d.len());
        // Sizes differ by at most one.
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![2, 2, 1, 1]);
        assert_eq!(shards[0].image(0), d.image(0));
        assert_eq!(shards[3].image(0), d.image(5));
    }

    #[test]
    fn split_off_front_moves_samples() {
        let mut d = tiny();
        let head = d.split_off_front(2);
        assert_eq!(head.len(), 2);
        assert_eq!(d.len(), 4);
        assert_eq!(head.image(0), &[0.0, 1.0]);
        assert_eq!(d.image(0), &[4.0, 5.0]);
    }

    #[test]
    fn as_tensor_shape() {
        let d = tiny();
        let t = d.as_tensor();
        assert_eq!(t.shape().dims(), &[6, 2]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn new_rejects_inconsistent_buffers() {
        let _ = Dataset::new("bad", vec![2], 2, vec![0.0; 5], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_bad_labels() {
        let _ = Dataset::new("bad", vec![1], 2, vec![0.0; 2], vec![0, 2]);
    }
}
