//! Table 1 of the paper: the dataset card.

use std::fmt;

/// Descriptive card for one benchmark dataset (one row of Table 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetCard {
    /// Dataset name.
    pub name: &'static str,
    /// Training images.
    pub training_images: usize,
    /// Test images.
    pub test_images: usize,
    /// Pixel description, e.g. `"28x28"`.
    pub pixels: &'static str,
    /// Number of classes.
    pub classes: usize,
}

impl DatasetCard {
    /// Random-guess accuracy (`1 / classes`), quoted in §4.1.
    pub fn random_guess_accuracy(&self) -> f64 {
        1.0 / self.classes as f64
    }
}

impl fmt::Display for DatasetCard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:>12} {:>12} {:>10} {:>8}",
            self.name, self.training_images, self.test_images, self.pixels, self.classes
        )
    }
}

/// The three rows of Table 1.
pub fn standard_cards() -> Vec<DatasetCard> {
    vec![
        DatasetCard {
            name: "Mnist",
            training_images: 60_000,
            test_images: 10_000,
            pixels: "28x28",
            classes: 10,
        },
        DatasetCard {
            name: "Cifar",
            training_images: 50_000,
            test_images: 10_000,
            pixels: "3x32x32",
            classes: 10,
        },
        DatasetCard {
            name: "ImageNet",
            training_images: 1_200_000,
            test_images: 150_000,
            pixels: "256x256",
            classes: 1000,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_rows_match_paper() {
        let cards = standard_cards();
        assert_eq!(cards.len(), 3);
        assert_eq!(cards[0].training_images, 60_000);
        assert_eq!(cards[1].training_images, 50_000);
        assert_eq!(cards[2].training_images, 1_200_000);
        assert_eq!(cards[2].classes, 1000);
    }

    #[test]
    fn random_guess_accuracies_match_section_4_1() {
        let cards = standard_cards();
        assert!((cards[0].random_guess_accuracy() - 0.1).abs() < 1e-12);
        assert!((cards[2].random_guess_accuracy() - 0.001).abs() < 1e-12);
    }
}
