//! Thread-parallel execution substrate: a persistent worker pool plus
//! scoped fork-join helpers.
//!
//! The workspace is hermetic (no registry access, `unsafe` forbidden), so
//! instead of Rayon the compute kernels use two complementary mechanisms:
//!
//! * [`WorkerPool`] — a **persistent** pool of parked worker threads,
//!   lazily spawned once per process ([`pool()`]). Jobs are owned
//!   (`'static`) closures, so the blocked GEMM hands workers `Arc`-shared
//!   packed panels and receives owned output tiles back. This replaces
//!   the old thread-spawn-per-call fork-join for the compute-bound hot
//!   path: dispatch to a parked worker costs a condvar wake (~µs), not a
//!   thread spawn (~tens of µs).
//! * [`par_chunks_mut`] / [`par_zip_mut`] / [`par_zip2_mut`] — scoped
//!   band-split helpers for *borrowed* memory-bound kernels (the BLAS-1
//!   elastic updates). Safe Rust cannot lend a non-`'static` borrow to a
//!   persistent thread, and copying operands in and out would double the
//!   memory traffic of an O(n) kernel — exactly the cost it exists to
//!   avoid — so these spawn scoped threads per call and are gated behind
//!   a large-slice threshold where the spawn cost is noise (see
//!   DESIGN.md §8).
//! * [`par_rows`] — the original row-band fork-join, kept as a
//!   compatibility shim for the retained `gemm_naive` baseline.
//!
//! ## Why owned jobs (and not a scoped pool)
//!
//! A pool that runs borrowed closures on persistent threads requires
//! erasing the closure lifetime — that is `unsafe` (it is how Rayon and
//! crossbeam implement scopes), and this workspace forbids `unsafe`.
//! Owned jobs sidestep the problem: the GEMM parallel path already packs
//! its operands into fresh buffers, so sharing those via `Arc` and
//! returning owned tiles adds only O(m·n + m·k + k·n) traffic against an
//! O(m·n·k) kernel.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Number of threads a data-parallel kernel should use (workers + the
/// submitting thread itself).
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A unit of work: an owned, type-erased closure.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared state between the submitting side and the workers.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

/// Recovers the guard from a poisoned lock: a panic in a sibling job
/// must propagate as that job's missing result, not deadlock the queue.
fn lock_queue(shared: &Shared) -> MutexGuard<'_, VecDeque<Job>> {
    match shared.queue.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

thread_local! {
    /// True on pool worker threads; nested submissions run inline so a
    /// job can never block waiting on work queued behind itself.
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A persistent pool of parked worker threads executing owned jobs.
///
/// Workers are spawned once (at construction) and then live for the
/// lifetime of the pool — for the global [`pool()`], the lifetime of the
/// process. Between jobs they park inside a condvar wait; submission is
/// a queue push plus a wake.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: usize,
    spawned: AtomicUsize,
}

impl WorkerPool {
    /// A pool with `workers` background threads (0 is valid: all jobs
    /// then run inline on the submitting thread).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        let pool = Self {
            shared: shared.clone(),
            workers,
            spawned: AtomicUsize::new(0),
        };
        for idx in 0..workers {
            let shared = shared.clone();
            // ordering: plain statistics counter read by tests; no memory
            // is published through it.
            pool.spawned.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name(format!("easgd-pool-{idx}"))
                .spawn(move || {
                    IS_POOL_WORKER.with(|f| f.set(true));
                    loop {
                        let job = {
                            let mut q = lock_queue(&shared);
                            loop {
                                if let Some(job) = q.pop_front() {
                                    break job;
                                }
                                q = match shared.available.wait(q) {
                                    Ok(g) => g,
                                    Err(poisoned) => poisoned.into_inner(),
                                };
                            }
                        };
                        // A panicking job must not kill the worker: the
                        // pool is process-lifetime, so a dead worker would
                        // silently degrade every later parallel region.
                        // The panic still reaches the submitter — the
                        // job's result-channel sender is dropped without
                        // sending, which `run` reports as a panic. Jobs
                        // own their captures (`'static` + `Send`), so no
                        // caller-visible state is left half-mutated.
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                    }
                })
                .unwrap_or_else(|e| panic!("failed to spawn pool worker: {e}"));
        }
        pool
    }

    /// Number of threads this pool brings to a parallel region: its
    /// workers plus the submitting thread.
    pub fn threads(&self) -> usize {
        self.workers + 1
    }

    /// Total worker threads ever spawned by this pool. Constant after
    /// construction — the property the pool-lifecycle test asserts.
    pub fn threads_spawned(&self) -> usize {
        // ordering: plain statistics counter; see `new`.
        self.spawned.load(Ordering::Relaxed)
    }

    /// Runs every task, returning their results in task order.
    ///
    /// Tasks are distributed over the parked workers; the calling thread
    /// participates by draining the same queue instead of idling. Called
    /// from inside a pool worker (nested parallelism) or on a pool with
    /// zero workers, all tasks run inline on the current thread.
    ///
    /// # Panics
    /// Propagates a panic if any task panicked (the worker side poisons
    /// the result channel, surfacing here).
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let nested = IS_POOL_WORKER.with(|f| f.get());
        if self.workers == 0 || nested || n == 1 {
            return tasks.into_iter().map(|t| t()).collect();
        }

        let (tx, rx) = mpsc::channel::<(usize, T)>();
        {
            let mut q = lock_queue(&self.shared);
            for (idx, task) in tasks.into_iter().enumerate() {
                let tx = tx.clone();
                q.push_back(Box::new(move || {
                    // A send error means the submitter already gave up
                    // (its receiver is gone), which only happens if it
                    // panicked; dropping the result is then correct.
                    let _ = tx.send((idx, task()));
                }));
            }
        }
        self.shared.available.notify_all();
        drop(tx);

        // Help drain the queue rather than blocking immediately: the
        // submitting thread is one of the `threads()` compute threads.
        loop {
            let job = lock_queue(&self.shared).pop_front();
            match job {
                Some(job) => job(),
                None => break,
            }
        }

        let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
        for _ in 0..n {
            match rx.recv() {
                Ok((idx, value)) => slots[idx] = Some(value),
                Err(_) => panic!("pool worker panicked while running a job"),
            }
        }
        slots
            .into_iter()
            .map(|s| match s {
                Some(v) => v,
                None => panic!("pool job produced no result"),
            })
            .collect()
    }
}

/// The process-wide pool, spawned on first use with one worker per
/// available core beyond the submitting thread.
pub fn pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(max_threads().saturating_sub(1)))
}

// ---------------------------------------------------------------------------
// Per-thread pool override: the chip-partitioning seam (§6.2).
// ---------------------------------------------------------------------------

thread_local! {
    /// The pool installed by [`with_pool`] on this thread, if any.
    static CURRENT_POOL: std::cell::RefCell<Option<Arc<WorkerPool>>> =
        const { std::cell::RefCell::new(None) };
}

/// Installs `pool` as the calling thread's compute pool for the duration
/// of `f` (restored on return or unwind).
///
/// While installed, the pool-aware kernels resolve their parallelism
/// against it instead of the process-global [`pool()`]: GEMM's parallel
/// dispatch submits to this pool, and the band-split helpers size their
/// splits by [`current_threads`]. This is how a KNL-style chip partition
/// ([`PartitionedPool`]) confines each group's compute to the group's
/// own threads — a group driver never touches the global pool, even for
/// work past the parallel thresholds.
pub fn with_pool<R>(pool: &Arc<WorkerPool>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<WorkerPool>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_POOL.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let prev = CURRENT_POOL.with(|c| c.borrow_mut().replace(pool.clone()));
    let _restore = Restore(prev);
    f()
}

/// The pool override installed by [`with_pool`] on this thread, if any.
/// Kernels that submit owned jobs (GEMM) clone the handle; `None` means
/// "use the process-global [`pool()`]".
pub fn pool_override() -> Option<Arc<WorkerPool>> {
    CURRENT_POOL.with(|c| c.borrow().clone())
}

/// Threads the calling thread's compute region should fan out over: the
/// installed override's [`WorkerPool::threads`] when inside
/// [`with_pool`], otherwise [`max_threads`]. The band-split helpers and
/// the BLAS-1 parallel gates size against this, so a partition group
/// never oversubscribes beyond its own share of the chip.
pub fn current_threads() -> usize {
    match pool_override() {
        Some(p) => p.threads(),
        None => max_threads(),
    }
}

/// A KNL-style chip partition (§6.2): `G` NUMA-like groups, each owning
/// a private [`WorkerPool`] — the thread-level analogue of splitting a
/// 68-core chip into groups that each hold a replica of the data and
/// weights in their own MCDRAM slice and only meet at a gradient
/// reduction.
///
/// [`PartitionedPool::run`] drives one closure per group on its own
/// scoped driver thread with the group's pool installed via
/// [`with_pool`], so every tensor kernel the closure calls (GEMM, the
/// banded elastic updates) parallelizes over that group's threads only.
/// Groups therefore scale like independent small chips: no shared queue,
/// no cross-group work stealing, communication only through whatever
/// shared state the caller hands the closures.
pub struct PartitionedPool {
    groups: Vec<Arc<WorkerPool>>,
}

impl PartitionedPool {
    /// A partition of the whole chip into `groups` groups, each with an
    /// equal share of [`max_threads`] (at least one thread per group —
    /// on small machines groups oversubscribe rather than disappear).
    ///
    /// # Panics
    /// Panics if `groups == 0`.
    pub fn new(groups: usize) -> Self {
        assert!(groups > 0, "need at least one partition group");
        Self::with_group_threads(groups, (max_threads() / groups).max(1))
    }

    /// A partition with an explicit per-group thread count.
    ///
    /// # Panics
    /// Panics if `groups == 0` or `threads_per_group == 0`.
    pub fn with_group_threads(groups: usize, threads_per_group: usize) -> Self {
        assert!(groups > 0, "need at least one partition group");
        assert!(threads_per_group > 0, "a group needs at least one thread");
        Self {
            groups: (0..groups)
                .map(|_| Arc::new(WorkerPool::new(threads_per_group - 1)))
                .collect(),
        }
    }

    /// Number of groups in the partition.
    pub fn groups(&self) -> usize {
        self.groups.len()
    }

    /// Threads per group (workers + the group's driver thread).
    pub fn group_threads(&self) -> usize {
        self.groups.iter().map(|p| p.threads()).max().unwrap_or(1)
    }

    /// The pool of group `g`.
    ///
    /// # Panics
    /// Panics if `g` is out of range.
    pub fn group(&self, g: usize) -> &Arc<WorkerPool> {
        &self.groups[g]
    }

    /// Runs `f(group_index)` once per group, each on its own driver
    /// thread with the group's pool installed ([`with_pool`]). Returns
    /// the results in group order.
    ///
    /// # Panics
    /// Propagates the panic if any group closure panicked.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .groups
                .iter()
                .enumerate()
                .map(|(g, pool)| {
                    let f = &f;
                    let pool = pool.clone();
                    s.spawn(move || with_pool(&pool, || f(g)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    }
}

// ---------------------------------------------------------------------------
// Scoped helpers for borrowed, memory-bound kernels.
// ---------------------------------------------------------------------------

/// Splits `x` into one contiguous chunk per thread and applies
/// `f(offset, chunk)` to each in parallel. Serial when a single chunk
/// would remain.
pub fn par_chunks_mut<F>(x: &mut [f32], f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    par_chunks_mut_bands(current_threads(), x, f);
}

/// [`par_chunks_mut`] with an explicit band count instead of
/// [`max_threads`] — the banded/serial bit-equivalence tests force a
/// band split even on single-core machines through this entry point.
pub fn par_chunks_mut_bands<F>(bands: usize, x: &mut [f32], f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let threads = bands.min(x.len());
    if threads <= 1 {
        f(0, x);
        return;
    }
    let chunk = x.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (i, band) in x.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || f(i * chunk, band));
        }
    });
}

/// Parallel zip over one mutable and one shared slice of equal length:
/// `f(y_chunk, x_chunk)` on corresponding contiguous chunks.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn par_zip_mut<F>(y: &mut [f32], x: &[f32], f: F)
where
    F: Fn(&mut [f32], &[f32]) + Sync,
{
    par_zip_mut_bands(current_threads(), y, x, f);
}

/// [`par_zip_mut`] with an explicit band count (see
/// [`par_chunks_mut_bands`]).
pub fn par_zip_mut_bands<F>(bands: usize, y: &mut [f32], x: &[f32], f: F)
where
    F: Fn(&mut [f32], &[f32]) + Sync,
{
    assert_eq!(y.len(), x.len(), "par_zip_mut length mismatch");
    let threads = bands.min(y.len());
    if threads <= 1 {
        f(y, x);
        return;
    }
    let chunk = y.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (yc, xc) in y.chunks_mut(chunk).zip(x.chunks(chunk)) {
            let f = &f;
            s.spawn(move || f(yc, xc));
        }
    });
}

/// Parallel zip over one mutable and two shared slices of equal length.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn par_zip2_mut<F>(out: &mut [f32], a: &[f32], b: &[f32], f: F)
where
    F: Fn(&mut [f32], &[f32], &[f32]) + Sync,
{
    par_zip2_mut_bands(current_threads(), out, a, b, f);
}

/// [`par_zip2_mut`] with an explicit band count (see
/// [`par_chunks_mut_bands`]).
pub fn par_zip2_mut_bands<F>(bands: usize, out: &mut [f32], a: &[f32], b: &[f32], f: F)
where
    F: Fn(&mut [f32], &[f32], &[f32]) + Sync,
{
    assert_eq!(out.len(), a.len(), "par_zip2_mut length mismatch");
    assert_eq!(out.len(), b.len(), "par_zip2_mut length mismatch");
    let threads = bands.min(out.len());
    if threads <= 1 {
        f(out, a, b);
        return;
    }
    let chunk = out.len().div_ceil(threads);
    std::thread::scope(|s| {
        for ((oc, ac), bc) in out
            .chunks_mut(chunk)
            .zip(a.chunks(chunk))
            .zip(b.chunks(chunk))
        {
            let f = &f;
            s.spawn(move || f(oc, ac, bc));
        }
    });
}

/// Parallel zip over two mutable and one shared slice of equal length
/// (the Eq. 3–4 momentum shape: weights and velocity updated in place
/// against the gradient).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn par_zip21_mut<F>(y1: &mut [f32], y2: &mut [f32], a: &[f32], f: F)
where
    F: Fn(&mut [f32], &mut [f32], &[f32]) + Sync,
{
    par_zip21_mut_bands(current_threads(), y1, y2, a, f);
}

/// [`par_zip21_mut`] with an explicit band count (see
/// [`par_chunks_mut_bands`]).
pub fn par_zip21_mut_bands<F>(bands: usize, y1: &mut [f32], y2: &mut [f32], a: &[f32], f: F)
where
    F: Fn(&mut [f32], &mut [f32], &[f32]) + Sync,
{
    assert_eq!(y1.len(), y2.len(), "par_zip21_mut length mismatch");
    assert_eq!(y1.len(), a.len(), "par_zip21_mut length mismatch");
    let threads = bands.min(y1.len());
    if threads <= 1 {
        f(y1, y2, a);
        return;
    }
    let chunk = y1.len().div_ceil(threads);
    std::thread::scope(|s| {
        for ((y1c, y2c), ac) in y1
            .chunks_mut(chunk)
            .zip(y2.chunks_mut(chunk))
            .zip(a.chunks(chunk))
        {
            let f = &f;
            s.spawn(move || f(y1c, y2c, ac));
        }
    });
}

/// Parallel zip over two mutable and two shared slices of equal length
/// (the Eq. 5–6 momentum-elastic update shape: weights and velocity
/// updated in place against gradient and center).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn par_zip22_mut<F>(y1: &mut [f32], y2: &mut [f32], a: &[f32], b: &[f32], f: F)
where
    F: Fn(&mut [f32], &mut [f32], &[f32], &[f32]) + Sync,
{
    par_zip22_mut_bands(current_threads(), y1, y2, a, b, f);
}

/// [`par_zip22_mut`] with an explicit band count (see
/// [`par_chunks_mut_bands`]).
pub fn par_zip22_mut_bands<F>(
    bands: usize,
    y1: &mut [f32],
    y2: &mut [f32],
    a: &[f32],
    b: &[f32],
    f: F,
) where
    F: Fn(&mut [f32], &mut [f32], &[f32], &[f32]) + Sync,
{
    assert_eq!(y1.len(), y2.len(), "par_zip22_mut length mismatch");
    assert_eq!(y1.len(), a.len(), "par_zip22_mut length mismatch");
    assert_eq!(y1.len(), b.len(), "par_zip22_mut length mismatch");
    let threads = bands.min(y1.len());
    if threads <= 1 {
        f(y1, y2, a, b);
        return;
    }
    let chunk = y1.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (((y1c, y2c), ac), bc) in y1
            .chunks_mut(chunk)
            .zip(y2.chunks_mut(chunk))
            .zip(a.chunks(chunk))
            .zip(b.chunks(chunk))
        {
            let f = &f;
            s.spawn(move || f(y1c, y2c, ac, bc));
        }
    });
}

/// Applies `f(row_index, row)` to every `n`-element row of `c`,
/// fork-joining across available cores. `c.len()` must be a multiple of
/// `n`. Falls back to a serial loop when a single band would remain.
///
/// Compatibility shim: this is the seed's spawn-per-call fork-join,
/// retained so the frozen `gemm_naive` baseline exercises exactly the
/// threading it was benchmarked with. New code should use [`pool()`].
///
/// # Panics
/// Panics if `n == 0` or `c.len()` is not a multiple of `n`.
pub fn par_rows<F>(c: &mut [f32], n: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(n > 0, "row length must be positive");
    assert_eq!(c.len() % n, 0, "buffer is not a whole number of rows");
    let rows = c.len() / n;
    let threads = max_threads().min(rows);
    if threads <= 1 {
        for (i, row) in c.chunks_mut(n).enumerate() {
            f(i, row);
        }
        return;
    }
    // Ceil split so every band is non-empty and bands cover all rows.
    let rows_per_band = rows.div_ceil(threads);
    std::thread::scope(|s| {
        for (band_idx, band) in c.chunks_mut(rows_per_band * n).enumerate() {
            let f = &f;
            s.spawn(move || {
                let base = band_idx * rows_per_band;
                for (j, row) in band.chunks_mut(n).enumerate() {
                    f(base + j, row);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visits_every_row_exactly_once() {
        let n = 7;
        let rows = 129; // deliberately not a multiple of any thread count
        let mut c = vec![0.0f32; rows * n];
        par_rows(&mut c, n, |i, row| {
            for v in row.iter_mut() {
                *v += i as f32 + 1.0;
            }
        });
        for (i, chunk) in c.chunks(n).enumerate() {
            assert!(chunk.iter().all(|&v| v == i as f32 + 1.0), "row {i}");
        }
    }

    #[test]
    fn serial_fallback_single_row() {
        let mut c = vec![0.0f32; 5];
        par_rows(&mut c, 5, |i, row| row[0] = i as f32 + 3.0);
        assert_eq!(c[0], 3.0);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn rejects_ragged_buffer() {
        let mut c = vec![0.0f32; 7];
        par_rows(&mut c, 3, |_, _| {});
    }

    #[test]
    fn pool_runs_tasks_in_order() {
        let pool = WorkerPool::new(2);
        let tasks: Vec<_> = (0..17).map(|i| move || i * i).collect();
        let out = pool.run(tasks);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn pool_with_zero_workers_runs_inline() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.threads_spawned(), 0);
        let out = pool.run(vec![|| 41, || 42]);
        assert_eq!(out, vec![41, 42]);
    }

    #[test]
    fn pool_spawns_threads_exactly_once_across_repeated_use() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads_spawned(), 3);
        for round in 0..50 {
            let tasks: Vec<_> = (0..8).map(|i| move || round + i).collect();
            let out = pool.run(tasks);
            assert_eq!(out.len(), 8);
            // Every submission reuses the same parked workers.
            assert_eq!(pool.threads_spawned(), 3, "round {round}");
        }
    }

    #[test]
    fn worker_survives_job_panic() {
        let pool = WorkerPool::new(1);
        // Two tasks so `run` takes the queued path rather than inlining;
        // whichever thread executes the panicking job, `run` must
        // surface the panic to the submitter.
        type Task = Box<dyn FnOnce() -> i32 + Send>;
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(vec![
                Box::new(|| -> i32 { panic!("deliberate job panic") }) as Task,
                Box::new(|| 1) as Task,
            ])
        }));
        assert!(panicked.is_err());
        // The worker must still be alive afterwards: across repeated
        // submissions of briefly-sleeping jobs, at least one must land
        // on the pool thread. If the panic had killed the worker, every
        // job would run inline on this (test) thread.
        let mut saw_worker = false;
        for _ in 0..50 {
            let names = pool.run(
                (0..2)
                    .map(|_| {
                        || {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                            std::thread::current()
                                .name()
                                .map(str::to_string)
                                .unwrap_or_default()
                        }
                    })
                    .collect::<Vec<_>>(),
            );
            if names.iter().any(|n| n.starts_with("easgd-pool")) {
                saw_worker = true;
                break;
            }
        }
        assert!(saw_worker, "pool worker did not survive a panicking job");
    }

    #[test]
    fn nested_submission_runs_inline_without_deadlock() {
        let pool = Arc::new(WorkerPool::new(1));
        let inner = pool.clone();
        // The outer job occupies the single worker; its nested `run`
        // must execute inline instead of waiting on itself.
        let out = pool.run(vec![move || {
            inner.run(vec![|| 7, || 8]).iter().sum::<i32>()
        }]);
        assert_eq!(out, vec![15]);
    }

    #[test]
    fn global_pool_is_one_instance() {
        let a = pool() as *const WorkerPool;
        let b = pool() as *const WorkerPool;
        assert_eq!(a, b);
        assert_eq!(pool().threads_spawned(), pool().threads() - 1);
    }

    #[test]
    fn par_zip_mut_covers_all_elements() {
        let n = 100_003;
        let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let mut y = vec![1.0f32; n];
        par_zip_mut(&mut y, &x, |yc, xc| {
            for (yi, xi) in yc.iter_mut().zip(xc) {
                *yi += xi;
            }
        });
        for (i, v) in y.iter().enumerate() {
            assert_eq!(*v, 1.0 + i as f32);
        }
    }

    #[test]
    fn par_chunks_mut_offsets_are_consistent() {
        let n = 4099;
        let mut x = vec![0.0f32; n];
        par_chunks_mut(&mut x, |off, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (off + i) as f32;
            }
        });
        for (i, v) in x.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn par_zip21_mut_covers_all_elements() {
        let n = 10_007;
        let g: Vec<f32> = (0..n).map(|i| (i % 13) as f32).collect();
        let mut w = vec![1.0f32; n];
        let mut v = vec![0.5f32; n];
        par_zip21_mut(&mut w, &mut v, &g, |wc, vc, gc| {
            for ((wi, vi), gi) in wc.iter_mut().zip(vc.iter_mut()).zip(gc) {
                *vi = 0.9 * *vi - 0.1 * gi;
                *wi += *vi;
            }
        });
        for i in 0..n {
            let vi = 0.9f32 * 0.5 - 0.1 * g[i];
            assert_eq!(v[i], vi);
            assert_eq!(w[i], 1.0 + vi);
        }
    }

    #[test]
    fn forced_band_split_is_bit_identical_to_serial() {
        // Boundary-heavy length: not a multiple of the band counts below.
        let n = 4099;
        let a: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..n).map(|i| (i as f32).cos()).collect();
        let mut serial = vec![0.1f32; n];
        let kernel = |oc: &mut [f32], ac: &[f32], bc: &[f32]| {
            for ((o, x), y) in oc.iter_mut().zip(ac).zip(bc) {
                *o += 0.3 * (x - 0.7 * y);
            }
        };
        kernel(&mut serial, &a, &b);
        for bands in [2usize, 3, 5, 8] {
            let mut banded = vec![0.1f32; n];
            par_zip2_mut_bands(bands, &mut banded, &a, &b, kernel);
            for i in 0..n {
                assert_eq!(
                    serial[i].to_bits(),
                    banded[i].to_bits(),
                    "bands={bands} i={i}"
                );
            }
        }
    }

    #[test]
    fn par_zip2_mut_matches_serial() {
        let n = 50_001;
        let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
        let mut out = vec![0.0f32; n];
        par_zip2_mut(&mut out, &a, &b, |oc, ac, bc| {
            for ((o, x), y) in oc.iter_mut().zip(ac).zip(bc) {
                *o = x - y;
            }
        });
        for i in 0..n {
            assert_eq!(out[i], a[i] - b[i]);
        }
    }

    #[test]
    fn with_pool_overrides_current_threads_and_restores() {
        assert!(pool_override().is_none());
        assert_eq!(current_threads(), max_threads());
        let p = Arc::new(WorkerPool::new(3));
        let inner = with_pool(&p, || {
            assert!(pool_override().is_some());
            current_threads()
        });
        assert_eq!(inner, 4);
        assert!(pool_override().is_none());
        assert_eq!(current_threads(), max_threads());
    }

    #[test]
    fn with_pool_nests_and_restores_outer_override() {
        let outer = Arc::new(WorkerPool::new(1));
        let nested = Arc::new(WorkerPool::new(5));
        with_pool(&outer, || {
            assert_eq!(current_threads(), 2);
            let seen = with_pool(&nested, current_threads);
            assert_eq!(seen, 6);
            // The outer override must come back, not the global default.
            assert_eq!(current_threads(), 2);
        });
        assert!(pool_override().is_none());
    }

    #[test]
    fn with_pool_restores_on_unwind() {
        let p = Arc::new(WorkerPool::new(2));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_pool(&p, || panic!("deliberate"));
        }));
        assert!(caught.is_err());
        assert!(pool_override().is_none(), "override leaked past a panic");
    }

    #[test]
    fn partitioned_pool_runs_groups_in_order_with_own_pools() {
        let part = PartitionedPool::with_group_threads(4, 2);
        assert_eq!(part.groups(), 4);
        assert_eq!(part.group_threads(), 2);
        let expected: Vec<usize> = (0..4)
            .map(|g| Arc::as_ptr(part.group(g)) as usize)
            .collect();
        let out = part.run(|g| {
            let installed = pool_override().map(|p| Arc::as_ptr(&p) as usize);
            (g, installed, current_threads())
        });
        assert_eq!(out.len(), 4);
        for (g, row) in out.iter().enumerate() {
            assert_eq!(row.0, g, "results must come back in group order");
            assert_eq!(
                row.1,
                Some(expected[g]),
                "group {g} must see its own pool installed"
            );
            assert_eq!(row.2, 2, "group {g} threads");
        }
        // Distinct groups own distinct pools.
        assert!(expected.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn single_thread_groups_run_inline() {
        // A 1-thread group must never fan out: its pool has zero
        // workers, so any submitted work runs on the driver thread.
        let part = PartitionedPool::with_group_threads(3, 1);
        let out = part.run(|_| {
            assert_eq!(current_threads(), 1);
            let p = pool_override().expect("override installed");
            assert_eq!(p.threads_spawned(), 0);
            p.run(vec![|| std::thread::current().name().map(str::to_string)])
        });
        for row in out {
            // Driver threads are plain scoped threads (unnamed), never
            // the global pool's named workers.
            let name = row[0].clone().unwrap_or_default();
            assert!(!name.starts_with("easgd-pool"), "leaked onto {name}");
        }
    }

    #[test]
    fn partitioned_pool_propagates_group_panic() {
        let part = PartitionedPool::with_group_threads(2, 1);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            part.run(|g| {
                if g == 1 {
                    panic!("group failure");
                }
                g
            })
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn equal_share_partition_never_drops_a_group() {
        // More groups than cores: every group still gets one thread.
        let part = PartitionedPool::new(max_threads() * 2);
        assert_eq!(part.groups(), max_threads() * 2);
        assert!(part.group_threads() >= 1);
    }
}
