//! Figure 9: the method-design lineage as data.
//!
//! The paper presents its contributions as a derivation graph — each new
//! method is an existing method plus one idea (FCFS, momentum,
//! lock-freedom, elastic averaging, tree reduction). Encoding the graph
//! makes it testable and lets the harness print it.

use std::fmt;

/// The eight methods of Figure 8/9.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MethodId {
    /// Round-robin elastic averaging (existing; Zhang et al. 2015).
    OriginalEasgd,
    /// FCFS parameter server (existing; Dean et al. 2012).
    AsyncSgd,
    /// Async SGD + momentum (existing).
    AsyncMsgd,
    /// Lock-free shared-memory SGD (existing; Recht et al. 2011).
    HogwildSgd,
    /// FCFS elastic averaging (this paper).
    AsyncEasgd,
    /// FCFS elastic averaging + momentum (this paper).
    AsyncMeasgd,
    /// Lock-free elastic averaging (this paper).
    HogwildEasgd,
    /// Tree-reduced bulk-synchronous elastic averaging (this paper).
    SyncEasgd,
}

impl MethodId {
    /// All methods in a stable order.
    pub const ALL: [MethodId; 8] = [
        MethodId::OriginalEasgd,
        MethodId::AsyncSgd,
        MethodId::AsyncMsgd,
        MethodId::HogwildSgd,
        MethodId::AsyncEasgd,
        MethodId::AsyncMeasgd,
        MethodId::HogwildEasgd,
        MethodId::SyncEasgd,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            MethodId::OriginalEasgd => "Original EASGD",
            MethodId::AsyncSgd => "Async SGD",
            MethodId::AsyncMsgd => "Async MSGD",
            MethodId::HogwildSgd => "Hogwild SGD",
            MethodId::AsyncEasgd => "Async EASGD",
            MethodId::AsyncMeasgd => "Async MEASGD",
            MethodId::HogwildEasgd => "Hogwild EASGD",
            MethodId::SyncEasgd => "Sync EASGD",
        }
    }

    /// Filesystem/CLI-safe identifier (golden-digest keys, bench CLI
    /// flags): the display name, lowercased with underscores.
    pub fn slug(&self) -> &'static str {
        match self {
            MethodId::OriginalEasgd => "original_easgd",
            MethodId::AsyncSgd => "async_sgd",
            MethodId::AsyncMsgd => "async_msgd",
            MethodId::HogwildSgd => "hogwild_sgd",
            MethodId::AsyncEasgd => "async_easgd",
            MethodId::AsyncMeasgd => "async_measgd",
            MethodId::HogwildEasgd => "hogwild_easgd",
            MethodId::SyncEasgd => "sync_easgd",
        }
    }

    /// Whether the method pre-dates the paper (the red boxes of
    /// Figure 9).
    pub fn is_existing(&self) -> bool {
        matches!(
            self,
            MethodId::OriginalEasgd
                | MethodId::AsyncSgd
                | MethodId::AsyncMsgd
                | MethodId::HogwildSgd
        )
    }

    /// The existing method each of the paper's methods is compared
    /// against in Figure 6 (`None` for the existing methods themselves).
    pub fn counterpart(&self) -> Option<MethodId> {
        match self {
            MethodId::AsyncEasgd => Some(MethodId::AsyncSgd),
            MethodId::AsyncMeasgd => Some(MethodId::AsyncMsgd),
            MethodId::HogwildEasgd => Some(MethodId::HogwildSgd),
            MethodId::SyncEasgd => Some(MethodId::OriginalEasgd),
            _ => None,
        }
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One derivation arrow of Figure 9.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineageEdge {
    /// Source method.
    pub from: MethodId,
    /// Derived method.
    pub to: MethodId,
    /// The idea added along the edge.
    pub idea: &'static str,
}

/// The full Figure 9 derivation graph.
pub fn lineage() -> Vec<LineageEdge> {
    use MethodId::*;
    vec![
        LineageEdge {
            from: AsyncSgd,
            to: AsyncMsgd,
            idea: "momentum",
        },
        LineageEdge {
            from: AsyncSgd,
            to: HogwildSgd,
            idea: "lock-free",
        },
        LineageEdge {
            from: AsyncSgd,
            to: AsyncEasgd,
            idea: "elastic averaging",
        },
        LineageEdge {
            from: OriginalEasgd,
            to: AsyncEasgd,
            idea: "FCFS",
        },
        LineageEdge {
            from: AsyncEasgd,
            to: AsyncMeasgd,
            idea: "momentum",
        },
        LineageEdge {
            from: AsyncEasgd,
            to: HogwildEasgd,
            idea: "lock-free",
        },
        LineageEdge {
            from: HogwildSgd,
            to: HogwildEasgd,
            idea: "elastic averaging",
        },
        LineageEdge {
            from: OriginalEasgd,
            to: SyncEasgd,
            idea: "tree reduce",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_existing_four_new() {
        let existing = MethodId::ALL.iter().filter(|m| m.is_existing()).count();
        assert_eq!(existing, 4);
    }

    #[test]
    fn every_new_method_is_derived_from_something() {
        let edges = lineage();
        for m in MethodId::ALL.iter().filter(|m| !m.is_existing()) {
            assert!(
                edges.iter().any(|e| e.to == *m),
                "{m} has no derivation edge"
            );
        }
    }

    #[test]
    fn counterparts_match_figure_6() {
        assert_eq!(MethodId::AsyncEasgd.counterpart(), Some(MethodId::AsyncSgd));
        assert_eq!(
            MethodId::HogwildEasgd.counterpart(),
            Some(MethodId::HogwildSgd)
        );
        assert_eq!(
            MethodId::SyncEasgd.counterpart(),
            Some(MethodId::OriginalEasgd)
        );
        assert_eq!(MethodId::AsyncSgd.counterpart(), None);
    }

    #[test]
    fn roots_are_never_derived() {
        // Async SGD and Original EASGD are the roots of Figure 9.
        for e in lineage() {
            assert_ne!(e.to, MethodId::AsyncSgd, "{e:?}");
            assert_ne!(e.to, MethodId::OriginalEasgd, "{e:?}");
        }
    }
}
