//! Training on the *real* MNIST files when available, with a synthetic
//! fallback — demonstrating that the offline stand-ins and the genuine
//! dataset share one code path.
//!
//! ```sh
//! # with real data (http://yann.lecun.com/exdb/mnist):
//! MNIST_DIR=/data/mnist cargo run --release --example real_mnist
//! # offline:
//! cargo run --release --example real_mnist
//! ```

use knl_easgd::data::loaders::load_mnist;
use knl_easgd::prelude::*;
use std::path::PathBuf;

fn try_real_mnist() -> Option<(Dataset, Dataset)> {
    let dir = PathBuf::from(std::env::var("MNIST_DIR").ok()?);
    let train = load_mnist(
        &dir.join("train-images-idx3-ubyte"),
        &dir.join("train-labels-idx1-ubyte"),
    )
    .ok()?;
    let test = load_mnist(
        &dir.join("t10k-images-idx3-ubyte"),
        &dir.join("t10k-labels-idx1-ubyte"),
    )
    .ok()?;
    Some((train, test))
}

fn main() {
    let (train, test, source) = match try_real_mnist() {
        Some((tr, te)) => (tr, te, "real MNIST (idx files)"),
        None => {
            let task = SyntheticSpec::mnist().task(0x3A57);
            let (tr, te) = task.train_test(4_000, 1_000, 0x3A58);
            (
                tr,
                te,
                "synthetic MNIST stand-in (set MNIST_DIR for the real files)",
            )
        }
    };
    println!("data source: {source}");
    println!(
        "{} train / {} test samples of {:?}",
        train.len(),
        test.len(),
        train.shape
    );

    // Full-size Caffe LeNet (the Table 3 workload).
    let net = lenet(0x1E7);
    println!("model: LeNet, {} parameters", net.num_params());

    let cfg = TrainConfig::figure6(150).with_eta(0.1);
    let result = sync_easgd_shared(&net, &train, &test, &cfg);
    println!(
        "{}: {:.2}% test accuracy in {:.1}s ({} rounds x {} workers, batch {})",
        result.method,
        result.accuracy * 100.0,
        result.wall_seconds,
        cfg.iterations,
        cfg.workers,
        cfg.batch
    );
    println!("(paper's Table 3 accuracy on real MNIST at this scale: 98.8%)");
}
