//! Figure 10: the benefit of packed single-layer communication — Sync
//! SGD under the packed vs per-layer parameter layout.
//!
//! ```sh
//! cargo run --release -p easgd-bench --bin fig10
//! ```
//!
//! Because both layouts move identical bytes and apply identical
//! updates, accuracy at iteration k is the same; only the time axis
//! differs (the paper's caption: "the red triangles and blue squares
//! should be at identical heights"). The per-layer run pays one message
//! latency per layer per hop; the packed run pays one per hop. The
//! effect scales with network depth, so the executable run uses a deep
//! (VGG-style) tiny model, and the analytic section shows the same gap
//! for the paper's full-size models.

use easgd::{sync_sgd_sim, TrainConfig};
use easgd_data::SyntheticSpec;
use easgd_hardware::net::AlphaBeta;
use easgd_nn::spec::{spec_alexnet, spec_googlenet, spec_vgg19};
use easgd_nn::{CommSchedule, LayoutKind, Network, NetworkBuilder};

/// A deep VGG-style tiny model: many small conv stages → many per-layer
/// messages (the regime §5.2 targets).
fn deep_tiny(seed: u64) -> Network {
    NetworkBuilder::new([3, 16, 16])
        .conv2d(8, 3, 1, 1)
        .relu()
        .conv2d(8, 3, 1, 1)
        .relu()
        .maxpool(2, 2)
        .conv2d(16, 3, 1, 1)
        .relu()
        .conv2d(16, 3, 1, 1)
        .relu()
        .maxpool(2, 2)
        .conv2d(16, 3, 1, 1)
        .relu()
        .conv2d(16, 3, 1, 1)
        .relu()
        .flatten()
        .dense(64)
        .relu()
        .dense(10)
        .build(seed)
}

fn main() {
    let task = SyntheticSpec::cifar_small().task(0xF10);
    let (train, test) = task.train_test(2_000, 500, 0xF11);
    let net = deep_tiny(0xF12);
    let cfg = TrainConfig {
        workers: 4,
        batch: 64,
        eta: 0.1,
        rho: 0.3,
        mu: 0.9,
        iterations: 150,
        seed: 0xF13,
        comm_period: 1,
    };
    let shards = train.partition(cfg.workers);
    // Effective per-message cost of the 2016-era MPI + driver stack the
    // paper's frameworks paid (§5.2 observes the latency term dominates);
    // bandwidth from Table 2's 10GbE row.
    let link = AlphaBeta::new("MPI small-message effective", 100e-6, 0.9e-9);
    let fwd_bwd = 3.0e-3;

    println!(
        "Figure 10: packed vs per-layer communication (Sync SGD, {}-layer deep tiny model, {} params)",
        net.num_layers(),
        net.num_params()
    );
    for layout in [LayoutKind::PerLayer, LayoutKind::Packed] {
        let schedule = CommSchedule::from_network(&net, layout);
        println!(
            "\n{:?}: {} message(s), {} bytes per exchange",
            layout,
            schedule.num_messages(),
            schedule.total_bytes()
        );
        let r = sync_sgd_sim(&net, &shards, &test, &cfg, &link, layout, fwd_bwd, 25);
        println!("{:>8} {:>12} {:>8}", "iter", "sim secs", "acc %");
        for p in &r.trace {
            println!(
                "{:>8} {:>12.3} {:>8.1}",
                p.iteration,
                p.seconds,
                p.accuracy * 100.0
            );
        }
        println!(
            "total: {:.3}s to accuracy {:.1}% (identical heights, shifted time axis)",
            r.sim_seconds.unwrap(),
            r.accuracy * 100.0
        );
    }

    println!("\nAnalytic per-exchange gap for the paper's full-size models:");
    println!(
        "{:<12} {:>10} {:>16} {:>16} {:>9}",
        "model", "messages", "per-layer (ms)", "packed (ms)", "speedup"
    );
    for spec in [spec_alexnet(), spec_googlenet(), spec_vgg19()] {
        let per_layer = CommSchedule::from_spec(&spec, LayoutKind::PerLayer);
        let packed = CommSchedule::from_spec(&spec, LayoutKind::Packed);
        let tu = per_layer.time_alpha_beta(link.alpha_s, link.beta_s_per_byte);
        let tp = packed.time_alpha_beta(link.alpha_s, link.beta_s_per_byte);
        println!(
            "{:<12} {:>10} {:>16.2} {:>16.2} {:>8.2}x",
            spec.name,
            per_layer.num_messages(),
            tu * 1e3,
            tp * 1e3,
            tu / tp
        );
    }
}
