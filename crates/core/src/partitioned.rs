// xtask: allow(wall-clock) — partitioned trainers run real threads against a real clock by design.
//! §6.2 chip partitioning on real threads: the KNL divide-and-conquer
//! co-design executed, not modeled.
//!
//! [`crate::knl_partition`] prices the Figure 12 study with an Amdahl
//! model; this module *runs* it. A [`PartitionedPool`] splits the host's
//! cores into `P` NUMA-like groups — the thread-level analogue of
//! splitting a 68-core KNL chip into groups that each hold a data shard
//! and a weight replica in their own MCDRAM slice. Each group drives a
//! full local optimizer (its GEMMs and elastic updates fan out over the
//! group's *own* threads only, via the per-thread pool override in
//! `easgd_tensor::par`), and groups meet exactly where the paper's
//! partitions meet: at the parameter combine.
//!
//! Two combine rules mirror the paper's §6.2 choices:
//!
//! * [`partitioned_sync_easgd`] — the bulk-synchronous rule. One round =
//!   every group steps once, then the contributions fold over a binomial
//!   tree *laid out across the groups in shared memory*, replicating the
//!   executable-tree schedule of the simulated cluster rank for rank:
//!   group `i` plays cluster rank `i+1`, group 0 holds the center (the
//!   Sync-EASGD2 center GPU), and the data server's batch stream is
//!   drawn from the same rank-0 RNG. The fold applies the same
//!   element-wise additions in the same order as
//!   `tree_reduce_sum_among`, so the run is **bit-identical** to
//!   [`crate::sync_easgd_sim_with`] under
//!   [`crate::SyncExchange::ExecutableTree`] — the golden-parity test
//!   pins it.
//! * [`partitioned_hogwild_easgd`] — the lock-free rule (§5.1 applied
//!   across partitions): groups pull the shared center through the
//!   `AtomicBuffer` exactly like Hogwild-EASGD workers, but each
//!   "worker" is now a whole multi-threaded partition.
//!
//! Why bit-identity matters here: it proves the partitioned execution is
//! the *same algorithm* at every `P` and every threads-per-group — the
//! scaling curve in `BENCH_kernels.json` measures the hardware, not a
//! numerically drifting variant.

use crate::config::TrainConfig;
use crate::engine::{
    additive_rng, ElasticRule, LocalStep, RunAssembler, TraceRecorder, WorkerShard, SALT_HOGWILD,
};
use crate::metrics::RunResult;
use easgd_data::{Batch, Dataset};
use easgd_nn::Network;
use easgd_tensor::par::PartitionedPool;
use easgd_tensor::AtomicBuffer;
use std::sync::{Barrier, Mutex, MutexGuard};
use std::time::Instant;

/// Recovers the guard from a poisoned lock: a panicking group must
/// surface through the pool's join, not deadlock its siblings.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// What one group hands back at the end of a partitioned run.
struct GroupOutcome {
    last_loss: f32,
    loss_trace: Vec<f32>,
    trace: Vec<crate::metrics::TracePoint>,
}

/// Bulk-synchronous EASGD across chip partitions (§6.2, Figure 12): one
/// group per Sync-EASGD2 worker, center held by group 0, contributions
/// combined over a shared-memory binomial tree.
///
/// Rank-for-rank replication of the simulated cluster run
/// ([`crate::sync_easgd_sim_with`] with [`crate::SyncVariant::Easgd2`]
/// and [`crate::SyncExchange::ExecutableTree`] on `P+1` ranks):
///
/// * the batch stream is drawn from `additive_rng(seed, 0)` in rank
///   order, exactly as the rank-0 data server does;
/// * each group runs the fused exchange
///   ([`LocalStep::elastic_exchange_against`]) against the center it
///   copied at the round's start;
/// * the combine folds group `i+mask` into group `i` level by level
///   (mask ascending), the exact element-wise addition sequence of the
///   cluster's `tree_reduce_sum_among` rooted at the center rank;
/// * group 0 applies the Equation (2) dilution and records the accuracy
///   trace, like the center GPU.
///
/// The result is therefore bit-identical to the cluster run for every
/// `P` and every threads-per-group — only the wall clock changes.
///
/// # Panics
/// Panics if `pool.groups() != cfg.workers` or the config is invalid.
pub fn partitioned_sync_easgd(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
    pool: &PartitionedPool,
    trace_every: usize,
) -> RunResult {
    cfg.validate();
    let g = cfg.workers;
    assert_eq!(
        pool.groups(),
        g,
        "one partition group per Sync-EASGD worker required"
    );
    let rule = ElasticRule::from_config(cfg);
    let n = proto.num_params();
    let center = Mutex::new(proto.params().as_slice().to_vec());
    // The data server's stream: group 0 plays cluster rank 0's loop,
    // drawing one batch per group in rank order each round.
    let batches: Vec<Mutex<Option<Batch>>> = (0..g).map(|_| Mutex::new(None)).collect();
    let partials: Vec<Mutex<Vec<f32>>> = (0..g).map(|_| Mutex::new(vec![0.0f32; n])).collect();
    let round_gate = Barrier::new(g);
    let wall_start = Instant::now();

    let outs: Vec<GroupOutcome> = pool.run(|me| {
        let mut server_rng = additive_rng(cfg.seed, 0);
        let mut local = LocalStep::new(proto);
        let mut recorder = TraceRecorder::new(trace_every);
        let mut center_t = vec![0.0f32; n];
        let mut contribution = vec![0.0f32; n];
        for round in 0..cfg.iterations {
            // --- data path: group 0 replays the rank-0 server, drawing
            // every group's batch from the *same* RNG in rank order.
            if me == 0 {
                for (slot, batch) in batches.iter().zip(std::iter::repeat_with(|| {
                    train.sample_batch(&mut server_rng, cfg.batch)
                })) {
                    *lock(slot) = Some(batch);
                }
            }
            round_gate.wait();
            let batch = match lock(&batches[me]).take() {
                Some(b) => b,
                None => unreachable!("group 0 fills every batch slot before the gate"),
            };
            // --- compute + steps (2)-(3): forward/backward on the
            // group's threads, broadcast replaced by a center copy, and
            // the fused Equation (1) exchange publishing the pre-update
            // weights into this group's reduce partial.
            local.forward_backward(&batch);
            center_t.copy_from_slice(&lock(&center));
            local.elastic_exchange_against(&rule, &center_t, &mut contribution);
            lock(&partials[me]).copy_from_slice(&contribution);
            // --- step (4): binomial-tree fold across groups, mask
            // ascending with a barrier per level — the shared-memory
            // image of `tree_reduce_sum_among` rooted at group 0. Each
            // parent consumes a child partial that is fully folded for
            // all smaller masks, so the per-element addition chains are
            // exactly the cluster's.
            let mut mask = 1usize;
            while mask < g {
                round_gate.wait();
                if me & mask == 0 && me + mask < g {
                    let mut mine = lock(&partials[me]);
                    let other = lock(&partials[me + mask]);
                    for (d, s) in mine.iter_mut().zip(other.iter()) {
                        *d += *s;
                    }
                }
                mask <<= 1;
            }
            // --- step (5): the root group holds Σ Wᵢ and applies the
            // Equation (2) dilution; everyone else waits at the next
            // round's gate, which orders their center copy after it.
            if me == 0 {
                let mut c = lock(&center);
                rule.center_dilution(&mut c, &lock(&partials[0]), g);
                if recorder.due(round) {
                    let now = wall_start.elapsed().as_secs_f64();
                    recorder.record(round, now, proto, &c, test);
                }
            }
        }
        GroupOutcome {
            last_loss: local.last_loss(),
            loss_trace: local.take_loss_trace(),
            trace: recorder.into_points(),
        }
    });

    // Assembly follows `assemble_sim`'s conventions for the cluster run:
    // the center holder's loss trace is canonical (cluster rank 0 traces
    // nothing), and the final loss averages the *other* groups' last
    // losses (the center rank's own loss is deliberately not counted).
    let mut worker_losses = Vec::with_capacity(g.saturating_sub(1));
    let mut loss_trace = Vec::new();
    let mut trace = Vec::new();
    for (me, out) in outs.into_iter().enumerate() {
        if me == 0 {
            loss_trace = out.loss_trace;
            trace = out.trace;
        } else if out.last_loss.is_finite() {
            worker_losses.push(out.last_loss);
        }
    }
    let final_center = lock(&center);
    RunAssembler::new("Partitioned Sync EASGD", proto, test, cfg.iterations)
        .wall(wall_start.elapsed().as_secs_f64())
        .trace(trace)
        .loss_trace(loss_trace)
        .worker_losses(worker_losses)
        .finish(&final_center)
}

/// Lock-free EASGD across chip partitions: each group is one
/// Hogwild-EASGD worker (§5.1) scaled up to a multi-threaded partition.
/// Groups own a private data shard and weight replica and pull the
/// shared center through the `AtomicBuffer`'s component-wise lock-free
/// Equation (2) update — no barriers, no combine tree, the §6.2 layout
/// under the paper's most asynchronous rule.
///
/// The exchange body is exactly [`crate::hogwild_easgd`]'s (same
/// `comm_period` gating, same fused kernels); what changes is the
/// execution substrate: each worker's compute fans out over its
/// partition's threads.
///
/// # Panics
/// Panics if `pool.groups() != cfg.workers` or the config is invalid.
pub fn partitioned_hogwild_easgd(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
    pool: &PartitionedPool,
) -> RunResult {
    cfg.validate();
    assert_eq!(
        pool.groups(),
        cfg.workers,
        "one partition group per Hogwild worker required"
    );
    let rule = ElasticRule::from_config(cfg);
    let shared = AtomicBuffer::from_slice(proto.params().as_slice());
    let shards: Vec<Mutex<Option<WorkerShard>>> =
        WorkerShard::from_partition(train, cfg.workers, cfg.seed, SALT_HOGWILD)
            .into_iter()
            .map(|s| Mutex::new(Some(s)))
            .collect();
    let wall_start = Instant::now();

    let outs: Vec<(f32, Vec<f32>)> = pool.run(|me| {
        let mut shard = match lock(&shards[me]).take() {
            Some(s) => s,
            None => unreachable!("each group claims its own shard exactly once"),
        };
        let mut local = LocalStep::new(proto);
        for step in 0..cfg.iterations {
            let batch = shard.next_batch(cfg.batch);
            local.forward_backward(&batch);
            // Communication period τ: local SGD steps between lock-free
            // exchanges — byte-for-byte the Hogwild-EASGD exchange body.
            if (step + 1) % cfg.comm_period != 0 {
                local.sgd_step(cfg.eta);
                continue;
            }
            shared.elastic_center_update(cfg.eta, cfg.rho, local.params());
            shared.snapshot_into(local.snapshot_mut());
            local.elastic_step(&rule);
        }
        (local.last_loss(), local.take_loss_trace())
    });

    let mut worker_losses = Vec::with_capacity(outs.len());
    let mut loss_trace = Vec::new();
    for (me, (last_loss, trace)) in outs.into_iter().enumerate() {
        worker_losses.push(last_loss);
        if me == 0 {
            loss_trace = trace;
        }
    }
    let final_w = shared.snapshot();
    RunAssembler::new("Partitioned Hogwild EASGD", proto, test, cfg.iterations)
        .wall(wall_start.elapsed().as_secs_f64())
        .worker_losses(worker_losses)
        .loss_trace(loss_trace)
        .finish(&final_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simcost::SimCosts;
    use crate::sync::{sync_easgd_sim_with, SyncExchange, SyncVariant};
    use easgd_data::SyntheticSpec;
    use easgd_nn::models::lenet_tiny;

    fn setup() -> (Network, Dataset, Dataset) {
        let task = SyntheticSpec::mnist_small().task(51);
        let (train, test) = task.train_test(400, 160, 52);
        (lenet_tiny(53), train, test)
    }

    fn cfg(workers: usize, iterations: usize) -> TrainConfig {
        TrainConfig {
            workers,
            batch: 8,
            eta: 0.05,
            rho: 0.3,
            mu: 0.9,
            iterations,
            seed: 57,
            comm_period: 1,
        }
    }

    #[test]
    fn golden_parity_with_executable_tree_cluster_run() {
        // The headline invariant: the partitioned trainer replays the
        // simulated Sync-EASGD2 cluster run bit for bit — same center
        // fingerprint, same accuracy, same per-step losses, same trace
        // points (modulo the clock, which is wall here and priced
        // there) — at every partition width.
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        for p in [1usize, 2, 4] {
            let c = cfg(p, 10);
            let golden = sync_easgd_sim_with(
                &proto,
                &train,
                &test,
                &c,
                &costs,
                SyncVariant::Easgd2,
                5,
                SyncExchange::ExecutableTree,
            );
            let pool = PartitionedPool::with_group_threads(p, 1);
            let run = partitioned_sync_easgd(&proto, &train, &test, &c, &pool, 5);
            assert_eq!(run.center_hash, golden.center_hash, "P={p} center");
            assert_eq!(
                run.accuracy.to_bits(),
                golden.accuracy.to_bits(),
                "P={p} accuracy"
            );
            assert_eq!(
                run.final_loss.to_bits(),
                golden.final_loss.to_bits(),
                "P={p} final loss"
            );
            assert_eq!(run.loss_trace.len(), golden.loss_trace.len(), "P={p}");
            for (i, (a, b)) in run.loss_trace.iter().zip(&golden.loss_trace).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "P={p} loss step {i}");
            }
            assert_eq!(run.trace.len(), golden.trace.len(), "P={p} trace points");
            for (a, b) in run.trace.iter().zip(&golden.trace) {
                assert_eq!(a.iteration, b.iteration, "P={p}");
                assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits(), "P={p}");
            }
        }
    }

    #[test]
    fn result_is_invariant_to_threads_per_group() {
        // Scaling the groups' thread counts must not move a single bit:
        // the curve in BENCH_kernels.json measures hardware, not a
        // numerically drifting variant.
        let (proto, train, test) = setup();
        let c = cfg(2, 8);
        let narrow = PartitionedPool::with_group_threads(2, 1);
        let wide = PartitionedPool::with_group_threads(2, 3);
        let a = partitioned_sync_easgd(&proto, &train, &test, &c, &narrow, 4);
        let b = partitioned_sync_easgd(&proto, &train, &test, &c, &wide, 4);
        assert_eq!(a.center_hash, b.center_hash);
        assert_eq!(a.final_loss.to_bits(), b.final_loss.to_bits());
        for (x, y) in a.loss_trace.iter().zip(&b.loss_trace) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn partitioned_sync_is_deterministic() {
        let (proto, train, test) = setup();
        let c = cfg(3, 6);
        let go = || {
            let pool = PartitionedPool::with_group_threads(3, 1);
            partitioned_sync_easgd(&proto, &train, &test, &c, &pool, 0)
        };
        let (a, b) = (go(), go());
        assert_eq!(a.center_hash, b.center_hash);
        assert_eq!(a.final_loss.to_bits(), b.final_loss.to_bits());
    }

    #[test]
    fn partitioned_hogwild_learns_above_chance() {
        let (proto, train, test) = setup();
        let mut c = cfg(2, 150);
        c.batch = 16;
        let pool = PartitionedPool::with_group_threads(2, 1);
        let r = partitioned_hogwild_easgd(&proto, &train, &test, &c, &pool);
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
        assert!(r.final_loss.is_finite());
        assert_eq!(r.method, "Partitioned Hogwild EASGD");
        assert_eq!(r.loss_trace.len(), 150, "group 0 traces every step");
    }

    #[test]
    #[should_panic(expected = "one partition group per Sync-EASGD worker")]
    fn mismatched_partition_width_is_rejected() {
        let (proto, train, test) = setup();
        let pool = PartitionedPool::with_group_threads(2, 1);
        partitioned_sync_easgd(&proto, &train, &test, &cfg(3, 1), &pool, 0);
    }
}
