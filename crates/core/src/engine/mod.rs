//! The unified training engine: one worker runtime, one elastic rule,
//! one trace pipeline under every EASGD variant.
//!
//! Every trainer in this crate — wall-clock or simulated — is a thin
//! composition of four layers:
//!
//! * [`shard`] — dataset partitioning and the seed-derivation rule:
//!   which RNG stream each worker/rank draws its batches from.
//! * [`local`] — [`LocalStep`]: the per-worker network replica and its
//!   step kernels (forward/backward, SGD, momentum, elastic forms).
//! * [`elastic`] — [`ElasticRule`]: Equations (1), (2), (5)–(6) and the
//!   bulk-synchronous Σ-form, keyed by the `(η, ρ, µ)` triple.
//! * [`trace`] / [`sim`] / [`wall`] — the measurement layer: off-clock
//!   evaluation, accuracy traces, loss traces, center fingerprints, and
//!   [`crate::metrics::RunResult`] assembly for the thread-pool and
//!   virtual-cluster substrates respectively.
//!
//! What remains in each trainer module is only the method itself: the
//! synchronization discipline (lock, turn, barrier, FCFS server, tree
//! reduce) and the schedule of communication charges. Adding a new
//! algorithm is typically ~50 lines: pick a runtime
//! ([`wall::run_exchange_loop`] or a `VirtualCluster` closure returning
//! [`sim::RankOutcome`]s), write the exchange, and register it.
//!
//! The [`Trainer`] registry maps every [`MethodId`] of the Figure 9
//! lineage to its wall-clock implementation, exhaustively — there is no
//! fallback arm, so adding a `MethodId` without a trainer is a compile
//! error.

pub mod elastic;
pub mod local;
pub mod shard;
pub mod sim;
pub mod trace;
pub mod wall;

pub use elastic::ElasticRule;
pub use local::LocalStep;
pub use shard::{
    additive_rng, derive_seed, rank_rng, worker_rng, WorkerShard, SALT_HOGWILD, SALT_PHI,
};
pub use sim::{assemble_sim, RankOutcome};
pub use trace::{center_fingerprint, evaluate_center, RunAssembler, TraceRecorder};
pub use wall::{run_exchange_loop, run_worker_loop, WallRun};

use crate::config::TrainConfig;
use crate::lineage::MethodId;
use crate::metrics::RunResult;
use easgd_data::Dataset;
use easgd_nn::Network;

/// A runnable training method of the Figure 9 lineage.
pub trait Trainer: Sync {
    /// Which lineage method this trainer implements.
    fn id(&self) -> MethodId;

    /// Runs the method's wall-clock implementation.
    fn run(&self, proto: &Network, train: &Dataset, test: &Dataset, cfg: &TrainConfig)
        -> RunResult;
}

macro_rules! wall_trainer {
    ($name:ident, $id:expr, $f:path) => {
        struct $name;
        impl Trainer for $name {
            fn id(&self) -> MethodId {
                $id
            }
            fn run(
                &self,
                proto: &Network,
                train: &Dataset,
                test: &Dataset,
                cfg: &TrainConfig,
            ) -> RunResult {
                $f(proto, train, test, cfg)
            }
        }
    };
}

wall_trainer!(
    OriginalEasgdTrainer,
    MethodId::OriginalEasgd,
    crate::shared::original_easgd_turns
);
wall_trainer!(
    AsyncSgdTrainer,
    MethodId::AsyncSgd,
    crate::shared::async_sgd
);
wall_trainer!(
    AsyncMsgdTrainer,
    MethodId::AsyncMsgd,
    crate::shared::async_msgd
);
wall_trainer!(
    HogwildSgdTrainer,
    MethodId::HogwildSgd,
    crate::hogwild::hogwild_sgd
);
wall_trainer!(
    AsyncEasgdTrainer,
    MethodId::AsyncEasgd,
    crate::shared::async_easgd
);
wall_trainer!(
    AsyncMeasgdTrainer,
    MethodId::AsyncMeasgd,
    crate::shared::async_measgd
);
wall_trainer!(
    HogwildEasgdTrainer,
    MethodId::HogwildEasgd,
    crate::hogwild::hogwild_easgd
);
wall_trainer!(
    SyncEasgdTrainer,
    MethodId::SyncEasgd,
    crate::shared::sync_easgd_shared
);

/// The exhaustive method registry: every [`MethodId`] resolves to its
/// trainer; the match has no fallback arm by design.
pub fn trainer(method: MethodId) -> &'static dyn Trainer {
    match method {
        MethodId::OriginalEasgd => &OriginalEasgdTrainer,
        MethodId::AsyncSgd => &AsyncSgdTrainer,
        MethodId::AsyncMsgd => &AsyncMsgdTrainer,
        MethodId::HogwildSgd => &HogwildSgdTrainer,
        MethodId::AsyncEasgd => &AsyncEasgdTrainer,
        MethodId::AsyncMeasgd => &AsyncMeasgdTrainer,
        MethodId::HogwildEasgd => &HogwildEasgdTrainer,
        MethodId::SyncEasgd => &SyncEasgdTrainer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_match_their_keys() {
        for m in MethodId::ALL {
            assert_eq!(trainer(m).id(), m, "registry mismatch for {m:?}");
        }
    }
}
