//! Simulated time and the Table 3 cost-category breakdown.

use std::fmt;

/// The time categories of Table 3 / Figure 11.
///
/// The paper decomposes an EASGD iteration into eight parts (§6.1.1) and
/// ignores I/O and initialization as negligible; these are the six it
/// reports plus an `Other` bucket for idling and bookkeeping.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum TimeCategory {
    /// GPU ↔ GPU parameter communication (part 3).
    GpuGpuParam,
    /// CPU → GPU training-data communication (part 4).
    CpuGpuData,
    /// CPU ↔ GPU parameter communication (part 5).
    CpuGpuParam,
    /// Forward and backward propagation (part 6).
    ForwardBackward,
    /// Worker-side weight update, Equation (1) (part 7).
    GpuUpdate,
    /// Master-side center update, Equation (2) (part 8).
    CpuUpdate,
    /// Waiting / everything else.
    Other,
}

impl TimeCategory {
    /// All categories, in Table 3 column order.
    pub const ALL: [TimeCategory; 7] = [
        TimeCategory::GpuGpuParam,
        TimeCategory::CpuGpuData,
        TimeCategory::CpuGpuParam,
        TimeCategory::ForwardBackward,
        TimeCategory::GpuUpdate,
        TimeCategory::CpuUpdate,
        TimeCategory::Other,
    ];

    /// Table 3 column label.
    pub fn label(&self) -> &'static str {
        match self {
            TimeCategory::GpuGpuParam => "gpu-gpu para",
            TimeCategory::CpuGpuData => "cpu-gpu data",
            TimeCategory::CpuGpuParam => "cpu-gpu para",
            TimeCategory::ForwardBackward => "for/backward",
            TimeCategory::GpuUpdate => "gpu update",
            TimeCategory::CpuUpdate => "cpu update",
            TimeCategory::Other => "other",
        }
    }

    /// Is this a communication category? (Drives the “comm ratio” column:
    /// parts 3–5 are communication, 6–8 computation, §6.1.1.)
    pub fn is_communication(&self) -> bool {
        matches!(
            self,
            TimeCategory::GpuGpuParam | TimeCategory::CpuGpuData | TimeCategory::CpuGpuParam
        )
    }

    fn index(&self) -> usize {
        // Must match `Self::ALL` order (pinned by the `index_matches_all`
        // test below).
        match self {
            TimeCategory::GpuGpuParam => 0,
            TimeCategory::CpuGpuData => 1,
            TimeCategory::CpuGpuParam => 2,
            TimeCategory::ForwardBackward => 3,
            TimeCategory::GpuUpdate => 4,
            TimeCategory::CpuUpdate => 5,
            TimeCategory::Other => 6,
        }
    }
}

/// Seconds accumulated per category.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeBreakdown {
    buckets: [f64; 7],
}

impl TimeBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `seconds` to `category`.
    pub fn add(&mut self, category: TimeCategory, seconds: f64) {
        assert!(seconds >= 0.0, "negative time charge: {seconds}");
        self.buckets[category.index()] += seconds;
    }

    /// Seconds in one category.
    pub fn get(&self, category: TimeCategory) -> f64 {
        self.buckets[category.index()]
    }

    /// Total seconds across all categories.
    pub fn total(&self) -> f64 {
        self.buckets.iter().sum()
    }

    /// Seconds in communication categories (the numerator of Table 3's
    /// "comm ratio").
    pub fn communication(&self) -> f64 {
        TimeCategory::ALL
            .iter()
            .filter(|c| c.is_communication())
            .map(|c| self.get(*c))
            .sum()
    }

    /// Fraction of total time spent communicating (0 when nothing has
    /// been charged).
    pub fn comm_ratio(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.communication() / t
        }
    }

    /// Element-wise sum with another breakdown.
    pub fn merge(&mut self, other: &TimeBreakdown) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Fraction of the total per category, in [`TimeCategory::ALL`] order.
    pub fn percentages(&self) -> [f64; 7] {
        let t = self.total();
        let mut out = [0.0; 7];
        if t > 0.0 {
            for (o, b) in out.iter_mut().zip(&self.buckets) {
                *o = b / t;
            }
        }
        out
    }
}

impl fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in TimeCategory::ALL {
            let v = self.get(c);
            if v > 0.0 {
                write!(f, "{}={:.3}s ", c.label(), v)?;
            }
        }
        write!(f, "(comm {:.0}%)", self.comm_ratio() * 100.0)
    }
}

/// A rank's simulated clock: current time plus the category breakdown.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now: f64,
    breakdown: TimeBreakdown,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances by `seconds`, attributing them to `category`.
    pub fn charge(&mut self, category: TimeCategory, seconds: f64) {
        assert!(
            seconds >= 0.0 && seconds.is_finite(),
            "invalid time charge: {seconds}"
        );
        #[cfg(feature = "strict-invariants")]
        let before = self.now;
        self.now += seconds;
        self.breakdown.add(category, seconds);
        #[cfg(feature = "strict-invariants")]
        debug_assert!(
            self.now >= before && self.now.is_finite(),
            "SimClock moved backwards or overflowed: {before} -> {}",
            self.now
        );
    }

    /// Advances to absolute time `t` (no-op if already past), attributing
    /// the gap to `category`. Used when a message's arrival time or a
    /// collective's completion time is known.
    pub fn advance_to(&mut self, t: f64, category: TimeCategory) {
        #[cfg(feature = "strict-invariants")]
        let before = self.now;
        if t > self.now {
            let gap = t - self.now;
            self.now = t;
            self.breakdown.add(category, gap);
        }
        #[cfg(feature = "strict-invariants")]
        debug_assert!(
            self.now >= before && self.now.is_finite(),
            "SimClock moved backwards: {before} -> {}",
            self.now
        );
    }

    /// The category breakdown so far.
    pub fn breakdown(&self) -> &TimeBreakdown {
        &self.breakdown
    }
}

/// Final per-rank accounting, returned by `Comm::report`.
#[derive(Clone, Debug)]
pub struct RankReport {
    /// The rank.
    pub rank: usize,
    /// Final simulated time.
    pub time: f64,
    /// Category breakdown.
    pub breakdown: TimeBreakdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_matches_all() {
        for (i, c) in TimeCategory::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c:?}");
        }
    }

    #[test]
    fn charge_accumulates_time_and_category() {
        let mut c = SimClock::new();
        c.charge(TimeCategory::ForwardBackward, 2.0);
        c.charge(TimeCategory::CpuGpuParam, 1.0);
        c.charge(TimeCategory::ForwardBackward, 0.5);
        assert_eq!(c.now(), 3.5);
        assert_eq!(c.breakdown().get(TimeCategory::ForwardBackward), 2.5);
        assert_eq!(c.breakdown().get(TimeCategory::CpuGpuParam), 1.0);
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let mut c = SimClock::new();
        c.charge(TimeCategory::Other, 5.0);
        c.advance_to(3.0, TimeCategory::Other); // in the past: no-op
        assert_eq!(c.now(), 5.0);
        c.advance_to(7.0, TimeCategory::CpuGpuParam);
        assert_eq!(c.now(), 7.0);
        assert_eq!(c.breakdown().get(TimeCategory::CpuGpuParam), 2.0);
    }

    #[test]
    fn comm_ratio_matches_table3_definition() {
        let mut b = TimeBreakdown::new();
        b.add(TimeCategory::CpuGpuParam, 86.0);
        b.add(TimeCategory::CpuGpuData, 1.0);
        b.add(TimeCategory::ForwardBackward, 3.0);
        b.add(TimeCategory::GpuUpdate, 1.0);
        b.add(TimeCategory::CpuUpdate, 9.0);
        // 87/100 — the Original EASGD row of Table 3.
        assert!((b.comm_ratio() - 0.87).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_elementwise() {
        let mut a = TimeBreakdown::new();
        a.add(TimeCategory::GpuUpdate, 1.0);
        let mut b = TimeBreakdown::new();
        b.add(TimeCategory::GpuUpdate, 2.0);
        b.add(TimeCategory::Other, 3.0);
        a.merge(&b);
        assert_eq!(a.get(TimeCategory::GpuUpdate), 3.0);
        assert_eq!(a.total(), 6.0);
    }

    #[test]
    fn percentages_sum_to_one() {
        let mut b = TimeBreakdown::new();
        b.add(TimeCategory::ForwardBackward, 3.0);
        b.add(TimeCategory::GpuGpuParam, 1.0);
        let sum: f64 = b.percentages().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_has_zero_ratio() {
        assert_eq!(TimeBreakdown::new().comm_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn rejects_negative_charge() {
        TimeBreakdown::new().add(TimeCategory::Other, -1.0);
    }

    #[test]
    fn category_labels_cover_table3_columns() {
        let labels: Vec<_> = TimeCategory::ALL.iter().map(|c| c.label()).collect();
        assert!(labels.contains(&"gpu-gpu para"));
        assert!(labels.contains(&"cpu-gpu data"));
        assert!(labels.contains(&"cpu-gpu para"));
        assert!(labels.contains(&"for/backward"));
    }
}
