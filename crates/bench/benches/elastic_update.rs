//! Microbench: the elastic-averaging update kernels (Equations 1, 2,
//! 5–6) on a packed arena vs scattered per-layer buffers — the §5.2
//! memory-locality claim applied to the optimizer step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use easgd_tensor::ops::{elastic_center_update, elastic_momentum_update, elastic_worker_update};
use easgd_tensor::Rng;

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("elastic_kernels");
    let n = 431_080; // LeNet parameter count
    group.throughput(Throughput::Elements(n as u64));
    let grad = rand_vec(n, 1);
    let center = rand_vec(n, 2);
    let mut local = rand_vec(n, 3);
    let mut vel = vec![0.0f32; n];

    group.bench_function("eq1_worker", |bencher| {
        bencher.iter(|| elastic_worker_update(0.05, 0.3, &mut local, &grad, &center));
    });
    let mut c2 = center.clone();
    group.bench_function("eq2_center", |bencher| {
        bencher.iter(|| elastic_center_update(0.05, 0.3, &mut c2, &local));
    });
    group.bench_function("eq5_6_momentum_worker", |bencher| {
        bencher
            .iter(|| elastic_momentum_update(0.05, 0.9, 0.3, &mut local, &mut vel, &grad, &center));
    });
    group.finish();
}

fn bench_layout(c: &mut Criterion) {
    // Packed: one flat Eq-1 pass. Scattered: same total elements in many
    // separately allocated layer-sized buffers (the pre-§5.2 layout).
    let mut group = c.benchmark_group("elastic_layout");
    let sizes = [520usize, 25_050, 400_500, 5_010]; // LeNet's layers
    let n: usize = sizes.iter().sum();
    group.throughput(Throughput::Elements(n as u64));

    let grad = rand_vec(n, 4);
    let center = rand_vec(n, 5);
    let mut packed = rand_vec(n, 6);
    group.bench_function("packed_arena", |bencher| {
        bencher.iter(|| elastic_worker_update(0.05, 0.3, &mut packed, &grad, &center));
    });

    let mut scattered: Vec<Vec<f32>> = sizes.iter().map(|&s| rand_vec(s, 7)).collect();
    let grads: Vec<Vec<f32>> = sizes.iter().map(|&s| rand_vec(s, 8)).collect();
    let centers: Vec<Vec<f32>> = sizes.iter().map(|&s| rand_vec(s, 9)).collect();
    group.bench_function("scattered_layers", |bencher| {
        bencher.iter(|| {
            for ((w, g), cc) in scattered.iter_mut().zip(&grads).zip(&centers) {
                elastic_worker_update(0.05, 0.3, w, g, cc);
            }
        });
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("elastic_eq1_scaling");
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let grad = rand_vec(n, 10);
        let center = rand_vec(n, 11);
        let mut local = rand_vec(n, 12);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| elastic_worker_update(0.05, 0.3, &mut local, &grad, &center));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_layout, bench_scaling);
criterion_main!(benches);
