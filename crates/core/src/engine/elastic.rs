//! The elastic-averaging rule — Equations (1), (2), (5)–(6) and the
//! bulk-synchronous center dilution — in one tested place.
//!
//! Every EASGD variant in the paper is one of four applications of the
//! same `(η, ρ, µ)` triple:
//!
//! | method family          | update                        | here              |
//! |------------------------|-------------------------------|-------------------|
//! | worker, Eq (1)         | `Wᵢ ← Wᵢ − ηΔWᵢ − ηρ(Wᵢ−W̄)` | [`ElasticRule::worker_pull`]   |
//! | center, Eq (2)         | `W̄ ← W̄ + ηρ(Wᵢ−W̄)`         | [`ElasticRule::center_pull`]   |
//! | momentum worker, (5)–(6)| Eq (1) with velocity         | [`ElasticRule::momentum_pull`] |
//! | BSP center, Σ-form     | `W̄ ← W̄ + ηρ(ΣWᵢ − P·W̄)`    | [`ElasticRule::center_dilution`] |
//!
//! The Σ-form is Equation (2) applied once with the full worker sum —
//! what Sync EASGD's tree reduction produces — and is kept as a separate
//! method because its FP evaluation order (one fused pass over the sum)
//! is pinned by the golden-trace tests.

use crate::config::TrainConfig;
use easgd_tensor::ops;

/// The `(η, ρ, µ)` triple driving every elastic update.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ElasticRule {
    /// Learning rate `η`.
    pub eta: f32,
    /// Elastic strength `ρ`.
    pub rho: f32,
    /// Momentum `µ` (used only by [`ElasticRule::momentum_pull`]).
    pub mu: f32,
}

impl ElasticRule {
    /// Extracts the rule from a training configuration.
    pub fn from_config(cfg: &TrainConfig) -> Self {
        Self {
            eta: cfg.eta,
            rho: cfg.rho,
            mu: cfg.mu,
        }
    }

    /// Equation (1): the worker's gradient step plus the elastic pull
    /// toward the center.
    pub fn worker_pull(&self, local: &mut [f32], grad: &[f32], center: &[f32]) {
        ops::elastic_worker_update(self.eta, self.rho, local, grad, center);
    }

    /// Equation (2): the center's pull toward one worker.
    pub fn center_pull(&self, center: &mut [f32], local: &[f32]) {
        ops::elastic_center_update(self.eta, self.rho, center, local);
    }

    /// Equations (5)–(6): the momentum form of the worker update.
    pub fn momentum_pull(
        &self,
        local: &mut [f32],
        velocity: &mut [f32],
        grad: &[f32],
        center: &[f32],
    ) {
        ops::elastic_momentum_update(self.eta, self.mu, self.rho, local, velocity, grad, center);
    }

    /// Equation (2) in bulk-synchronous Σ-form: one center update with
    /// the full `P`-worker weight sum,
    /// `W̄ ← W̄ + ηρ·(ΣWᵢ − P·W̄)`.
    pub fn center_dilution(&self, center: &mut [f32], weight_sum: &[f32], workers: usize) {
        ops::center_dilution(self.eta, self.rho, center, weight_sum, workers);
    }

    /// The fused exchange step: captures `Wᵢ` into `contribution` (the
    /// Equation (2) reduce input) and applies the Equation (1) pull in
    /// one sweep. Bit-identical to copying the weights and then calling
    /// [`ElasticRule::worker_pull`].
    pub fn exchange(
        &self,
        local: &mut [f32],
        contribution: &mut [f32],
        grad: &[f32],
        center: &[f32],
    ) {
        ops::elastic_exchange(self.eta, self.rho, local, contribution, grad, center);
    }

    /// [`ElasticRule::center_dilution`] fused with the preceding center
    /// refresh: `out ← center_t + ηρ(ΣWᵢ − P·center_t)`, bit-identical
    /// to `copy(center_t, out)` + dilution.
    pub fn center_dilution_from(
        &self,
        center_t: &[f32],
        weight_sum: &[f32],
        workers: usize,
        out: &mut [f32],
    ) {
        ops::center_dilution_from(self.eta, self.rho, center_t, weight_sum, workers, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule() -> ElasticRule {
        ElasticRule {
            eta: 0.1,
            rho: 0.5,
            mu: 0.9,
        }
    }

    #[test]
    fn from_config_copies_the_triple() {
        let cfg = TrainConfig::figure6(10);
        let r = ElasticRule::from_config(&cfg);
        assert_eq!((r.eta, r.rho, r.mu), (cfg.eta, cfg.rho, cfg.mu));
    }

    #[test]
    fn worker_pull_is_gradient_step_plus_elastic_term() {
        let r = rule();
        let mut local = vec![1.0f32];
        r.worker_pull(&mut local, &[2.0], &[0.5]);
        // 1 − 0.1·2 − 0.1·0.5·(1 − 0.5) = 0.775
        assert!((local[0] - 0.775).abs() < 1e-6);
    }

    #[test]
    fn dilution_with_one_worker_equals_center_pull() {
        // Σ-form with P = 1 must be bit-identical to Equation (2):
        // both compute c + ηρ(w − c) in the same order.
        let r = rule();
        let w = vec![0.25f32, -1.5, 3.0];
        let mut a = vec![0.5f32, 0.75, -2.0];
        let mut b = a.clone();
        r.center_pull(&mut a, &w);
        r.center_dilution(&mut b, &w, 1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn dilution_fixed_point_is_the_worker_mean() {
        let r = rule();
        // ΣWᵢ = P·W̄ ⇒ no movement.
        let mut c = vec![2.0f32, -1.0];
        let sum = vec![8.0f32, -4.0];
        r.center_dilution(&mut c, &sum, 4);
        assert_eq!(c, vec![2.0, -1.0]);
    }

    #[test]
    fn momentum_pull_matches_the_two_equation_form() {
        let r = rule();
        let mut local = vec![1.0f32];
        let mut vel = vec![0.2f32];
        r.momentum_pull(&mut local, &mut vel, &[2.0], &[0.5]);
        // v ← 0.9·0.2 − 0.1·2 = −0.02; w ← 1 − 0.02 − 0.05·(1−0.5) = 0.955
        assert!((vel[0] + 0.02).abs() < 1e-6);
        assert!((local[0] - 0.955).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "dilution length mismatch")]
    fn dilution_rejects_mismatched_lengths() {
        rule().center_dilution(&mut [0.0], &[0.0, 0.0], 2);
    }

    #[test]
    fn fused_exchange_is_bit_identical_to_copy_then_worker_pull() {
        let r = rule();
        let w0 = vec![1.0f32, -0.5, 0.25, 3.5];
        let grad = vec![0.5f32, 1.5, -2.0, 0.125];
        let center = vec![0.75f32, -0.25, 0.5, 3.0];

        let mut fused = w0.clone();
        let mut contribution = vec![0.0f32; w0.len()];
        r.exchange(&mut fused, &mut contribution, &grad, &center);

        let mut two_pass = w0.clone();
        let published = two_pass.clone();
        r.worker_pull(&mut two_pass, &grad, &center);

        for (a, b) in fused.iter().zip(&two_pass) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in contribution.iter().zip(&published) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn fused_dilution_from_is_bit_identical_to_copy_then_dilution() {
        let r = rule();
        let center_t = vec![0.5f32, -1.25, 2.0];
        let sum = vec![3.0f32, 1.0, -0.5];

        let mut out = vec![9.0f32; 3];
        r.center_dilution_from(&center_t, &sum, 3, &mut out);

        let mut two_pass = center_t.clone();
        r.center_dilution(&mut two_pass, &sum, 3);

        for (a, b) in out.iter().zip(&two_pass) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
