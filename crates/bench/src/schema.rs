//! Schema self-check for the checked-in `BENCH_*.json` artifacts.
//!
//! Every bench binary hand-rolls its JSON writer (the workspace carries
//! no JSON dependency), which means a renamed acceptance key or a
//! truncated file is invisible until a human reads the artifact. This
//! registry pins, per artifact, the structural frame and the acceptance
//! keys that CI's smoke legs grep for — `--bin schema_check` validates
//! all checked-in artifacts in one shot, so a bench refactor that
//! silently drops a key fails the per-push gate instead of rotting.
//!
//! The registry intentionally lists **key presence**, not values:
//! thresholds on values stay in each bin's `validate_checked_in`, next
//! to the code that produces them. A key listed in
//! [`BenchSchema::required_true`] must be present *and* literally
//! `true` — those are correctness gates (monotonicity, bit-identity),
//! never environment-dependent measurements.

use std::path::Path;

/// The pinned shape of one checked-in bench artifact.
#[derive(Clone, Copy, Debug)]
pub struct BenchSchema {
    /// File name at the repo root.
    pub file: &'static str,
    /// Acceptance keys that must be present with a numeric value.
    pub required_numbers: &'static [&'static str],
    /// Acceptance keys that must be present and literally `true`.
    pub required_true: &'static [&'static str],
}

/// Every checked-in bench artifact and its required acceptance keys.
pub const SCHEMAS: &[BenchSchema] = &[
    BenchSchema {
        file: "BENCH_kernels.json",
        required_numbers: &[
            "gemm_256_serial_speedup_vs_naive",
            "gemm_1024_speedup_vs_seed_fork_join",
            "gemm_256_serial_gflops",
            "vgg_fc6_b32_gflops",
            "vgg_fc6_b32_speedup_vs_seed_fork_join",
        ],
        required_true: &[],
    },
    BenchSchema {
        file: "BENCH_comm.json",
        required_numbers: &[
            "fused_kernel_speedup_vs_two_pass",
            "pooled_fused_step_speedup_vs_seed",
            "pooled_allocs_per_exchange_step",
            "seed_allocs_per_exchange_step",
            "pooled_bytes_copied_mb_per_step",
            "seed_bytes_copied_mb_per_step",
            "tree_over_flat_time_ratio_p8",
            "overlap_efficiency_p8",
            "pipelined_over_serial_step_ratio_p8",
            "pipelined_allocs_per_round",
        ],
        required_true: &[],
    },
    BenchSchema {
        file: "BENCH_train.json",
        required_numbers: &[
            "lenet_step_speedup_vs_seed",
            "vgg_step_speedup_vs_seed",
            "pooled_allocs_per_train_step",
            "seed_allocs_per_train_step",
        ],
        required_true: &[],
    },
    BenchSchema {
        file: "BENCH_cluster.json",
        required_numbers: &[
            "max_abs_efficiency_delta_vs_model",
            "googlenet_efficiency_2176_cores",
            "vgg_efficiency_2176_cores",
            "googlenet_efficiency_p8192",
            "vgg_efficiency_p8192",
            "tree_fit_r2",
            "tree_slope_s_per_doubling",
            "tree_growth_ratio_8192_over_512",
            "max_event_ranks",
        ],
        required_true: &["figure13_speedup_monotone"],
    },
    BenchSchema {
        file: "BENCH_serve.json",
        required_numbers: &["qps_batch8_over_batch1", "steady_state_allocs_per_request"],
        required_true: &[
            "p99_within_deadline_bound",
            "sim_bit_identical",
            "eval_bitwise_ok",
        ],
    },
];

/// Pulls `"key": <number>` out of hand-rolled bench JSON. Shared by the
/// per-bin validators and the schema check.
pub fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Whether `"key": true` appears literally (the writers emit bare JSON
/// booleans).
pub fn json_true(text: &str, key: &str) -> bool {
    let needle = format!("\"{key}\":");
    match text.find(&needle) {
        Some(at) => text[at + needle.len()..].trim_start().starts_with("true"),
        None => false,
    }
}

/// Validates one artifact's text against its schema.
pub fn validate_text(schema: &BenchSchema, text: &str) -> Result<(), String> {
    let trimmed = text.trim();
    if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
        return Err(format!("{}: not a JSON object", schema.file));
    }
    if json_number(text, "schema").is_none() {
        return Err(format!("{}: missing \"schema\" version", schema.file));
    }
    if !text.contains("\"generated_by\":") {
        return Err(format!("{}: missing \"generated_by\"", schema.file));
    }
    if !text.contains("\"acceptance\":") {
        return Err(format!("{}: missing \"acceptance\" block", schema.file));
    }
    for key in schema.required_numbers {
        if json_number(text, key).is_none() {
            return Err(format!(
                "{}: missing numeric acceptance key {key}",
                schema.file
            ));
        }
    }
    for key in schema.required_true {
        if json_true(text, key) {
            continue;
        }
        return Err(if text.contains(&format!("\"{key}\":")) {
            format!("{}: acceptance key {key} must be true", schema.file)
        } else {
            format!("{}: missing boolean acceptance key {key}", schema.file)
        });
    }
    Ok(())
}

/// Validates every registered artifact under `root`; returns one error
/// line per failure (empty = all artifacts conform).
pub fn validate_all(root: &Path) -> Vec<String> {
    let mut errors = Vec::new();
    for schema in SCHEMAS {
        let path = root.join(schema.file);
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                if let Err(e) = validate_text(schema, &text) {
                    errors.push(e);
                }
            }
            Err(e) => errors.push(format!("{}: unreadable ({e})", schema.file)),
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
  "schema": 1,
  "generated_by": "cargo run --release -p easgd-bench --bin serve",
  "acceptance": {
    "qps_batch8_over_batch1": 7.11,
    "steady_state_allocs_per_request": 0.00,
    "p99_within_deadline_bound": true,
    "sim_bit_identical": true,
    "eval_bitwise_ok": true
  },
  "entries": []
}
"#;

    fn serve_schema() -> &'static BenchSchema {
        SCHEMAS
            .iter()
            .find(|s| s.file == "BENCH_serve.json")
            .unwrap()
    }

    #[test]
    fn accepts_a_conforming_artifact() {
        assert_eq!(validate_text(serve_schema(), GOOD), Ok(()));
    }

    #[test]
    fn rejects_missing_or_false_keys() {
        let missing = GOOD.replace("\"sim_bit_identical\": true,\n", "");
        let err = validate_text(serve_schema(), &missing).unwrap_err();
        assert!(err.contains("missing boolean"), "{err}");

        let falsy = GOOD.replace("\"eval_bitwise_ok\": true", "\"eval_bitwise_ok\": false");
        let err = validate_text(serve_schema(), &falsy).unwrap_err();
        assert!(err.contains("must be true"), "{err}");

        let keyless = GOOD.replace("qps_batch8_over_batch1", "qps_renamed");
        let err = validate_text(serve_schema(), &keyless).unwrap_err();
        assert!(err.contains("missing numeric"), "{err}");
    }

    #[test]
    fn rejects_structural_damage() {
        assert!(validate_text(serve_schema(), "not json").is_err());
        let no_accept = GOOD.replace("\"acceptance\":", "\"acc\":");
        assert!(validate_text(serve_schema(), &no_accept).is_err());
    }

    #[test]
    fn number_parser_reads_scientific_notation() {
        assert_eq!(
            json_number("{\"x\": 2.220e-16}", "x"),
            Some(2.220e-16),
            "cluster artifact uses scientific notation"
        );
    }

    #[test]
    fn checked_in_artifacts_all_conform() {
        // The crate sits at crates/bench; artifacts live at the root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let errors = validate_all(&root);
        assert!(errors.is_empty(), "schema violations: {errors:#?}");
    }
}
