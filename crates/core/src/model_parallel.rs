//! Model parallelism (§2.3, Figure 4.2) — implemented so the paper's
//! *choice against it* can be demonstrated rather than asserted.
//!
//! Model parallelism partitions each layer's matrix operation across P
//! machines: here, a dense layer's weight `W[out, in]` is split by output
//! rows; each rank computes its slice of `Y = X·Wᵀ` and the full
//! activation is assembled with an allgather. Gradients flow back with a
//! reduce over the partial input-gradients. The result is *numerically
//! identical* to the single-machine layer (the §2.3 claim: “model
//! parallelism can get the same solution as the single-machine case”).
//!
//! The paper's argument for data parallelism (§2.3): batch (≤ 2048) and
//! picture sizes are small, so these per-layer matrix operations are too
//! small to amortize per-layer communication — “parallelizing a
//! 2048×1024×1024 matrix multiplication only needs one or two machines.”
//! [`model_parallel_speedup`] prices exactly that trade.

use easgd_cluster::{Comm, TimeCategory};
use easgd_hardware::net::AlphaBeta;
use easgd_tensor::{gemm, Transpose};

/// Row-partition bounds: output rows of rank `r` when `out` rows are
/// split over `p` ranks.
pub fn partition_rows(out: usize, p: usize, r: usize) -> (usize, usize) {
    let base = out / p;
    let extra = out % p;
    let start = r * base + r.min(extra);
    (start, start + base + usize::from(r < extra))
}

/// Distributed dense forward: each rank holds `W` rows
/// `[rows_r, in]` and the bias slice; computes its output slice for the
/// whole batch and allgathers the full `[batch, out]` activation.
///
/// Returns the assembled activation (identical on every rank).
pub fn model_parallel_dense_forward(
    comm: &mut Comm,
    x: &[f32],
    batch: usize,
    in_features: usize,
    out_features: usize,
    w_slice: &[f32],
    b_slice: &[f32],
) -> Vec<f32> {
    let p = comm.size();
    let r = comm.rank();
    let (r0, r1) = partition_rows(out_features, p, r);
    let rows = r1 - r0;
    assert_eq!(w_slice.len(), rows * in_features, "weight slice shape");
    assert_eq!(b_slice.len(), rows, "bias slice shape");
    // Partial output, batch-major within the slice: [batch, rows].
    let mut part = vec![0.0f32; batch * rows];
    gemm(
        Transpose::No,
        Transpose::Yes,
        batch,
        rows,
        in_features,
        1.0,
        x,
        w_slice,
        0.0,
        &mut part,
    );
    for row in part.chunks_mut(rows) {
        for (v, b) in row.iter_mut().zip(b_slice) {
            *v += b;
        }
    }
    // Allgather the slices ([batch, rows_r] blocks in rank order), then
    // interleave into [batch, out].
    let mut gathered = Vec::new();
    comm.allgather_into(&part, TimeCategory::GpuGpuParam, &mut gathered);
    let mut out = vec![0.0f32; batch * out_features];
    let mut offset = 0;
    for rank in 0..p {
        let (s0, s1) = partition_rows(out_features, p, rank);
        let w = s1 - s0;
        for b in 0..batch {
            out[b * out_features + s0..b * out_features + s1]
                .copy_from_slice(&gathered[offset + b * w..offset + (b + 1) * w]);
        }
        offset += batch * w;
    }
    out
}

/// Distributed dense backward (input gradient only, which is what the
/// §2.3 comparison needs): each rank computes `∂L/∂X` from its weight
/// slice and the matching slice of `∂L/∂Y`, and the partial input
/// gradients are summed with an allreduce.
pub fn model_parallel_dense_backward(
    comm: &mut Comm,
    grad_y: &[f32],
    batch: usize,
    in_features: usize,
    out_features: usize,
    w_slice: &[f32],
) -> Vec<f32> {
    let p = comm.size();
    let r = comm.rank();
    let (r0, r1) = partition_rows(out_features, p, r);
    let rows = r1 - r0;
    // Extract this rank's grad_y slice [batch, rows].
    let mut gy = vec![0.0f32; batch * rows];
    for b in 0..batch {
        gy[b * rows..(b + 1) * rows]
            .copy_from_slice(&grad_y[b * out_features + r0..b * out_features + r1]);
    }
    // Partial ∂L/∂X = gy · W_slice  ([batch, rows]·[rows, in]).
    let mut gx = vec![0.0f32; batch * in_features];
    gemm(
        Transpose::No,
        Transpose::No,
        batch,
        in_features,
        rows,
        1.0,
        &gy,
        w_slice,
        0.0,
        &mut gx,
    );
    let mut summed = Vec::new();
    comm.allreduce_sum_into(&gx, TimeCategory::GpuGpuParam, &mut summed);
    summed
}

/// The §2.3 cost argument, priced: speedup of `p`-way model parallelism
/// over one machine for a `[batch × in] · [in × out]` layer, given a
/// device's sustained flops and an interconnect. Values ≤ 1 mean model
/// parallelism *loses* — the regime the paper's workloads live in.
pub fn model_parallel_speedup(
    batch: usize,
    in_features: usize,
    out_features: usize,
    p: usize,
    sustained_flops: f64,
    link: &AlphaBeta,
) -> f64 {
    let flops = 2.0 * batch as f64 * in_features as f64 * out_features as f64;
    let single = flops / sustained_flops;
    // Per-rank compute + allgather of the [batch, out] activation
    // (ring-style: (p−1)/p of the data crosses the wire per rank).
    let compute = single / p as f64;
    let bytes = batch * out_features * 4;
    let comm = if p > 1 {
        (p - 1) as f64 * link.alpha_s
            + ((p - 1) as f64 / p as f64) * bytes as f64 * link.beta_s_per_byte
    } else {
        0.0
    };
    single / (compute + comm)
}

/// Reference single-machine forward for the tests.
pub fn dense_forward_reference(
    x: &[f32],
    batch: usize,
    in_features: usize,
    out_features: usize,
    w: &[f32],
    bias: &[f32],
) -> Vec<f32> {
    let mut y = vec![0.0f32; batch * out_features];
    gemm(
        Transpose::No,
        Transpose::Yes,
        batch,
        out_features,
        in_features,
        1.0,
        x,
        w,
        0.0,
        &mut y,
    );
    for row in y.chunks_mut(out_features) {
        for (v, b) in row.iter_mut().zip(bias) {
            *v += b;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use easgd_cluster::{ClusterConfig, VirtualCluster};
    use easgd_tensor::Rng;

    #[test]
    fn partition_rows_cover_exactly() {
        for (out, p) in [(10usize, 3usize), (8, 4), (5, 7)] {
            let mut next = 0;
            let mut total = 0;
            for r in 0..p {
                let (s, e) = partition_rows(out, p, r);
                assert_eq!(s, next);
                total += e - s;
                next = e;
            }
            assert_eq!(total, out);
        }
    }

    #[test]
    fn distributed_forward_matches_single_machine() {
        // The §2.3 claim: same solution as the single-machine case.
        let (batch, inf, outf, p) = (4usize, 6usize, 10usize, 3usize);
        let mut rng = Rng::new(1);
        let x: Vec<f32> = (0..batch * inf).map(|_| rng.normal()).collect();
        let w: Vec<f32> = (0..outf * inf).map(|_| rng.normal()).collect();
        let bias: Vec<f32> = (0..outf).map(|_| rng.normal()).collect();
        let reference = dense_forward_reference(&x, batch, inf, outf, &w, &bias);

        let (xr, wr, br) = (&x, &w, &bias);
        let cfg = ClusterConfig::new(p);
        let outs = VirtualCluster::run(&cfg, move |comm| {
            let (r0, r1) = partition_rows(outf, p, comm.rank());
            let w_slice = &wr[r0 * inf..r1 * inf];
            let b_slice = &br[r0..r1];
            model_parallel_dense_forward(comm, xr, batch, inf, outf, w_slice, b_slice)
        });
        for y in outs {
            for (a, b) in y.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn distributed_backward_matches_single_machine() {
        let (batch, inf, outf, p) = (3usize, 5usize, 8usize, 2usize);
        let mut rng = Rng::new(2);
        let w: Vec<f32> = (0..outf * inf).map(|_| rng.normal()).collect();
        let gy: Vec<f32> = (0..batch * outf).map(|_| rng.normal()).collect();
        // Reference: gx = gy · W.
        let mut reference = vec![0.0f32; batch * inf];
        gemm(
            Transpose::No,
            Transpose::No,
            batch,
            inf,
            outf,
            1.0,
            &gy,
            &w,
            0.0,
            &mut reference,
        );
        let (wr, gyr) = (&w, &gy);
        let cfg = ClusterConfig::new(p);
        let outs = VirtualCluster::run(&cfg, move |comm| {
            let (r0, r1) = partition_rows(outf, p, comm.rank());
            let w_slice = &wr[r0 * inf..r1 * inf];
            model_parallel_dense_backward(comm, gyr, batch, inf, outf, w_slice)
        });
        for gx in outs {
            for (a, b) in gx.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn small_layers_do_not_benefit_from_model_parallelism() {
        // §2.3: "parallelizing a 2048×1024×1024 matrix multiplication
        // only needs one or two machines" — at the paper's layer sizes,
        // P-way model parallelism over InfiniBand loses or barely wins.
        let link = AlphaBeta::fdr_infiniband();
        let sustained = 1.8e12; // K80-class sustained
        let s8 = model_parallel_speedup(2048, 1024, 1024, 8, sustained, &link);
        let s2 = model_parallel_speedup(2048, 1024, 1024, 2, sustained, &link);
        assert!(s2 > 1.0, "2 machines should still help a little: {s2:.2}");
        assert!(
            s8 < 2.0 * s2,
            "8 machines must be far from linear: s8 {s8:.2} vs s2 {s2:.2}"
        );
        // At a genuinely small layer (batch 64), even 2-way parallelism
        // is a wash or a loss.
        let small = model_parallel_speedup(64, 256, 256, 2, sustained, &link);
        assert!(small < 1.3, "small-layer speedup {small:.2}");
    }
}
