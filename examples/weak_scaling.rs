//! Table 4: weak-scaling of GoogLeNet and VGG over 68 → 4352 KNL cores
//! under the calibrated allreduce model, plus the Intel Caffe comparison
//! of §7.1.
//!
//! ```sh
//! cargo run --release --example weak_scaling
//! ```

use knl_easgd::algorithms::weak_scaling::{INTEL_CAFFE_GOOGLENET_2176, INTEL_CAFFE_VGG_2176};
use knl_easgd::prelude::*;

fn main() {
    let nodes = [1usize, 2, 4, 8, 16, 32, 64];

    for (model, iters) in [
        (WeakScalingModel::googlenet_imagenet(), 300usize),
        (WeakScalingModel::vgg_imagenet(), 80usize),
    ] {
        println!(
            "\n{} — {:.1} M parameters, {:.0} MB of weights, {iters} iterations",
            model.spec.name,
            model.spec.num_params() as f64 / 1e6,
            model.spec.weight_bytes() as f64 / 1e6
        );
        println!(
            "{:>8} {:>8} {:>12} {:>12}",
            "cores", "nodes", "time (s)", "efficiency"
        );
        for row in model.table(&nodes, iters) {
            println!(
                "{:>8} {:>8} {:>12.0} {:>11.1}%",
                row.cores,
                row.nodes,
                row.total_seconds,
                row.efficiency * 100.0
            );
        }
    }

    println!(
        "\nIntel Caffe at 2176 cores (paper §7.1): GoogLeNet {:.0}%, VGG {:.0}% — \
         both below this implementation's modelled efficiencies.",
        INTEL_CAFFE_GOOGLENET_2176 * 100.0,
        INTEL_CAFFE_VGG_2176 * 100.0
    );
}
