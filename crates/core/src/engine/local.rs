//! One worker's local optimization state: network replica, gradient and
//! velocity buffers, center snapshot, and per-step loss trace.
//!
//! [`LocalStep`] is the compute half of every trainer — wall-clock and
//! simulated alike. It owns the forward/backward call and the local
//! update rules (SGD, momentum, and the elastic forms via
//! [`ElasticRule`]), so the exact FP evaluation order of a training step
//! lives in exactly one place.

use crate::engine::elastic::ElasticRule;
use crate::schedule::apply_weight_decay;
use easgd_data::Batch;
use easgd_nn::Network;
use easgd_tensor::ops;

/// Per-worker training state plus the step kernels that mutate it.
pub struct LocalStep {
    net: Network,
    grad: Vec<f32>,
    velocity: Vec<f32>,
    snapshot: Vec<f32>,
    loss_trace: Vec<f32>,
    last_loss: f32,
}

impl LocalStep {
    /// A fresh replica of `proto` with zeroed buffers.
    pub fn new(proto: &Network) -> Self {
        let net = proto.clone();
        let n = net.num_params();
        Self {
            net,
            grad: vec![0.0f32; n],
            velocity: vec![0.0f32; n],
            snapshot: vec![0.0f32; n],
            loss_trace: Vec::new(),
            last_loss: f32::NAN,
        }
    }

    /// One forward/backward pass: records the loss and captures the
    /// gradient into the local buffer. Returns the step loss.
    pub fn forward_backward(&mut self, batch: &Batch) -> f32 {
        let stats = self.net.forward_backward(&batch.images, &batch.labels);
        self.record_loss(stats.loss);
        self.grad.copy_from_slice(self.net.grads().as_slice());
        stats.loss
    }

    /// [`LocalStep::forward_backward`] over a flat pixel buffer (the
    /// decoded form of a [`easgd_cluster::BatchMsg`]): copies the pixels
    /// into the network's pooled batch tensor and steps on it — no
    /// per-round tensor allocation once warm.
    pub fn forward_backward_flat(&mut self, batch: usize, pixels: &[f32], labels: &[usize]) -> f32 {
        let stats = self.net.forward_backward_from_slice(batch, pixels, labels);
        self.record_loss(stats.loss);
        self.grad.copy_from_slice(self.net.grads().as_slice());
        stats.loss
    }

    fn record_loss(&mut self, loss: f32) {
        self.last_loss = loss;
        self.loss_trace.push(loss);
    }

    /// Plain SGD step `W ← W − ηΔW` on the captured gradient.
    pub fn sgd_step(&mut self, eta: f32) {
        ops::sgd_update(eta, self.net.params_mut().as_mut_slice(), &self.grad);
    }

    /// Momentum step, Equations (3)–(4), on the captured gradient.
    pub fn momentum_step(&mut self, eta: f32, mu: f32) {
        ops::momentum_update(
            eta,
            mu,
            self.net.params_mut().as_mut_slice(),
            &mut self.velocity,
            &self.grad,
        );
    }

    /// Adds `λ·W` to the captured gradient (L2 weight decay).
    pub fn decay_grad(&mut self, lambda: f32) {
        apply_weight_decay(lambda, self.net.params().as_slice(), &mut self.grad);
    }

    /// Equation (1) against the stored center snapshot.
    pub fn elastic_step(&mut self, rule: &ElasticRule) {
        rule.worker_pull(
            self.net.params_mut().as_mut_slice(),
            &self.grad,
            &self.snapshot,
        );
    }

    /// Equation (1) against an explicit center (simulated trainers that
    /// receive the center over the wire).
    pub fn elastic_step_against(&mut self, rule: &ElasticRule, center: &[f32]) {
        rule.worker_pull(self.net.params_mut().as_mut_slice(), &self.grad, center);
    }

    /// The fused exchange step against an explicit center: publishes the
    /// pre-update weights into `contribution` (the Equation (2) reduce
    /// input) and applies Equation (1), in one sweep. Bit-identical to
    /// copying [`LocalStep::params`] out and then calling
    /// [`LocalStep::elastic_step_against`].
    pub fn elastic_exchange_against(
        &mut self,
        rule: &ElasticRule,
        center: &[f32],
        contribution: &mut [f32],
    ) {
        rule.exchange(
            self.net.params_mut().as_mut_slice(),
            contribution,
            &self.grad,
            center,
        );
    }

    /// One segment of [`LocalStep::elastic_exchange_against`]: the fused
    /// exchange restricted to `range` of the parameter arena. Because the
    /// rule is purely elementwise, running it segment by segment over a
    /// partition of `0..num_params` is bit-identical to one whole-vector
    /// call — the contract the pipelined tree exchange builds on.
    pub fn elastic_exchange_segment(
        &mut self,
        rule: &ElasticRule,
        range: std::ops::Range<usize>,
        center_seg: &[f32],
        contribution_seg: &mut [f32],
    ) {
        rule.exchange(
            &mut self.net.params_mut().as_mut_slice()[range.clone()],
            contribution_seg,
            &self.grad[range],
            center_seg,
        );
    }

    /// [`LocalStep::elastic_exchange_against`] using the stored center
    /// snapshot (the shared-memory Sync EASGD path).
    pub fn elastic_exchange_step(&mut self, rule: &ElasticRule, contribution: &mut [f32]) {
        rule.exchange(
            self.net.params_mut().as_mut_slice(),
            contribution,
            &self.grad,
            &self.snapshot,
        );
    }

    /// Equations (5)–(6) against the stored center snapshot.
    pub fn elastic_momentum_step(&mut self, rule: &ElasticRule) {
        rule.momentum_pull(
            self.net.params_mut().as_mut_slice(),
            &mut self.velocity,
            &self.grad,
            &self.snapshot,
        );
    }

    /// Copies `center` into the snapshot buffer.
    pub fn snapshot_center(&mut self, center: &[f32]) {
        self.snapshot.copy_from_slice(center);
    }

    /// The stored center snapshot.
    pub fn snapshot(&self) -> &[f32] {
        &self.snapshot
    }

    /// Mutable snapshot buffer, for fillers like
    /// `AtomicBuffer::snapshot_into`.
    pub fn snapshot_mut(&mut self) -> &mut [f32] {
        &mut self.snapshot
    }

    /// Loads the stored snapshot into the network parameters (the
    /// Hogwild SGD read phase).
    pub fn load_snapshot_params(&mut self) {
        self.net.set_params(&self.snapshot);
    }

    /// Current local parameters.
    pub fn params(&self) -> &[f32] {
        self.net.params().as_slice()
    }

    /// Mutable local parameters (for updates the rule types don't cover,
    /// e.g. Sync SGD's summed-gradient `axpy`).
    pub fn params_mut(&mut self) -> &mut [f32] {
        self.net.params_mut().as_mut_slice()
    }

    /// Overwrites the local parameters.
    pub fn set_params(&mut self, src: &[f32]) {
        self.net.set_params(src);
    }

    /// The captured gradient of the last forward/backward.
    pub fn grad(&self) -> &[f32] {
        &self.grad
    }

    /// Parameter count.
    pub fn num_params(&self) -> usize {
        self.net.num_params()
    }

    /// Loss of the most recent step (NaN before the first).
    pub fn last_loss(&self) -> f32 {
        self.last_loss
    }

    /// Consumes the accumulated per-step loss trace.
    pub fn take_loss_trace(&mut self) -> Vec<f32> {
        std::mem::take(&mut self.loss_trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easgd_data::SyntheticSpec;
    use easgd_nn::models::lenet_tiny;

    fn setup() -> (Network, easgd_data::Dataset) {
        let task = SyntheticSpec::mnist_small().task(3);
        let (train, _) = task.train_test(64, 16, 4);
        (lenet_tiny(5), train)
    }

    #[test]
    fn forward_backward_matches_raw_network_use() {
        let (proto, train) = setup();
        let mut rng = easgd_tensor::Rng::new(17);
        let batch = train.sample_batch(&mut rng, 8);

        let mut local = LocalStep::new(&proto);
        let loss = local.forward_backward(&batch);

        let mut net = proto.clone();
        let stats = net.forward_backward(&batch.images, &batch.labels);
        assert_eq!(loss.to_bits(), stats.loss.to_bits());
        assert_eq!(local.grad(), net.grads().as_slice());
        assert_eq!(local.last_loss().to_bits(), stats.loss.to_bits());
    }

    #[test]
    fn flat_and_batch_paths_agree() {
        let (proto, train) = setup();
        let mut rng = easgd_tensor::Rng::new(18);
        let batch = train.sample_batch(&mut rng, 8);

        let mut a = LocalStep::new(&proto);
        let la = a.forward_backward(&batch);
        let mut b = LocalStep::new(&proto);
        let lb = b.forward_backward_flat(8, batch.images.as_slice(), &batch.labels);
        assert_eq!(la.to_bits(), lb.to_bits());
        assert_eq!(a.params(), b.params());
    }

    #[test]
    fn sgd_step_applies_the_captured_gradient() {
        let (proto, train) = setup();
        let mut rng = easgd_tensor::Rng::new(19);
        let batch = train.sample_batch(&mut rng, 8);
        let mut local = LocalStep::new(&proto);
        local.forward_backward(&batch);
        let mut want = local.params().to_vec();
        ops::sgd_update(0.1, &mut want, local.grad());
        local.sgd_step(0.1);
        assert_eq!(local.params(), &want[..]);
    }

    #[test]
    fn loss_trace_accumulates_in_step_order() {
        let (proto, train) = setup();
        let mut rng = easgd_tensor::Rng::new(20);
        let mut local = LocalStep::new(&proto);
        for _ in 0..3 {
            let batch = train.sample_batch(&mut rng, 8);
            local.forward_backward(&batch);
        }
        let trace = local.take_loss_trace();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[2].to_bits(), local.last_loss().to_bits());
        assert!(local.take_loss_trace().is_empty());
    }

    #[test]
    fn segmented_exchange_is_bit_identical_to_whole_vector() {
        let (proto, train) = setup();
        let mut rng = easgd_tensor::Rng::new(21);
        let batch = train.sample_batch(&mut rng, 8);
        let rule = ElasticRule {
            eta: 0.05,
            rho: 0.3,
            mu: 0.9,
        };

        let mut whole = LocalStep::new(&proto);
        whole.forward_backward(&batch);
        let n = whole.num_params();
        let center: Vec<f32> = (0..n).map(|i| (i as f32).sin() * 0.1).collect();
        let mut want = vec![0.0f32; n];
        whole.elastic_exchange_against(&rule, &center, &mut want);

        let mut segged = LocalStep::new(&proto);
        segged.forward_backward(&batch);
        let mut got = vec![0.0f32; n];
        // Uneven partition on purpose: 7 segments of n not divisible by 7.
        let segments = 7;
        let mut start = 0;
        for s in 0..segments {
            let end = n * (s + 1) / segments;
            segged.elastic_exchange_segment(
                &rule,
                start..end,
                &center[start..end],
                &mut got[start..end],
            );
            start = end;
        }
        for (a, b) in segged.params().iter().zip(whole.params()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn snapshot_roundtrip() {
        let (proto, _) = setup();
        let mut local = LocalStep::new(&proto);
        let center = vec![0.5f32; local.num_params()];
        local.snapshot_center(&center);
        assert_eq!(local.snapshot(), &center[..]);
        local.load_snapshot_params();
        assert_eq!(local.params(), &center[..]);
    }
}
