//! Packed parameter arena: the §5.2 “single-layer communication” substrate.
//!
//! Deep-learning frameworks of the paper's era allocated each layer's
//! weights separately and sent one message per layer. §5.2 shows that
//! packing all layers into one contiguous allocation wins twice: the α
//! (latency) term is paid once instead of once per layer, and contiguous
//! memory access has a higher cache-hit rate.
//!
//! [`ParamArena`] is that contiguous allocation: a single `Vec<f32>` with a
//! registry of named [`Segment`]s. A whole model's parameters — and,
//! symmetrically, its gradients, velocities, and center weights — live in
//! arenas of identical layout, so elastic updates and collectives operate
//! on one flat slice.
//!
//! [`TrainScratch`] extends the same idea from weights to the *transient*
//! side of a training step: activations, gradients, masks/caches and
//! im2col panels. Every per-step buffer request on the pooled
//! forward/backward path is routed through its counted `ensure_*` /
//! `shape_tensor*` entry points, so after a warm-up step the steady state
//! performs zero heap allocations — and the counters prove it (see
//! DESIGN.md §11 and `BENCH_train.json`).

use crate::tensor::Tensor;
use std::fmt;

/// A named sub-range of a [`ParamArena`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Human-readable name, e.g. `"conv1.weight"`.
    pub name: String,
    /// Offset in elements from the start of the arena.
    pub offset: usize,
    /// Length in elements.
    pub len: usize,
}

impl Segment {
    /// The element range of this segment.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.offset..self.offset + self.len
    }
}

/// Builder that lays out segments back-to-back, then freezes into an arena.
#[derive(Default)]
pub struct ArenaBuilder {
    segments: Vec<Segment>,
    total: usize,
}

impl ArenaBuilder {
    /// A builder with no segments.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a segment of `len` elements and returns its index.
    pub fn push(&mut self, name: impl Into<String>, len: usize) -> usize {
        let idx = self.segments.len();
        self.segments.push(Segment {
            name: name.into(),
            offset: self.total,
            len,
        });
        self.total += len;
        idx
    }

    /// Freezes the layout into a zero-initialized arena.
    pub fn build(self) -> ParamArena {
        ParamArena {
            data: vec![0.0; self.total],
            segments: self.segments,
        }
    }
}

/// A contiguous, named-segment parameter buffer.
#[derive(Clone, PartialEq)]
pub struct ParamArena {
    data: Vec<f32>,
    segments: Vec<Segment>,
}

impl ParamArena {
    /// Starts building an arena.
    pub fn builder() -> ArenaBuilder {
        ArenaBuilder::new()
    }

    /// A segment-less arena over `len` raw elements (useful when only the
    /// flat view matters, e.g. a gradient accumulation buffer).
    pub fn flat(len: usize) -> Self {
        Self {
            data: vec![0.0; len],
            segments: vec![Segment {
                name: "flat".to_string(),
                offset: 0,
                len,
            }],
        }
    }

    /// An arena with the same segment layout as `other`, zero-filled.
    ///
    /// Gradients, momenta and center weights are all laid out like the
    /// weights they shadow, which is what lets Equations (1)–(6) run as
    /// flat-slice kernels.
    pub fn like(other: &ParamArena) -> Self {
        Self {
            data: vec![0.0; other.data.len()],
            segments: other.segments.clone(),
        }
    }

    /// Total elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the arena holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes (the message size of the packed layout).
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// The segment registry.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The whole arena as one flat slice — the packed message of §5.2.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Read-only view of segment `idx`.
    pub fn segment(&self, idx: usize) -> &[f32] {
        let r = self.segments[idx].range();
        &self.data[r]
    }

    /// Mutable view of segment `idx`.
    pub fn segment_mut(&mut self, idx: usize) -> &mut [f32] {
        let r = self.segments[idx].range();
        &mut self.data[r]
    }

    /// Looks a segment up by name.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.segments.iter().position(|s| s.name == name)
    }

    /// Splits the arena into disjoint mutable segment views, in registry
    /// order. This is how a layer gets simultaneous access to its weight
    /// and bias without aliasing the rest of the model.
    pub fn split_mut(&mut self) -> Vec<&mut [f32]> {
        let mut out = Vec::with_capacity(self.segments.len());
        let mut rest: &mut [f32] = &mut self.data;
        let mut consumed = 0;
        for seg in &self.segments {
            assert!(
                seg.offset >= consumed,
                "segments must be non-overlapping and ordered"
            );
            let skip = seg.offset - consumed;
            let (_, tail) = rest.split_at_mut(skip);
            let (head, tail) = tail.split_at_mut(seg.len);
            out.push(head);
            rest = tail;
            consumed = seg.offset + seg.len;
        }
        out
    }

    /// Overwrites this arena's contents from another of identical length.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn copy_from(&mut self, other: &ParamArena) {
        assert_eq!(self.len(), other.len(), "arena length mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Zeroes all elements.
    pub fn zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }
}

impl fmt::Debug for ParamArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ParamArena({} segments, {} elements, {} bytes)",
            self.segments.len(),
            self.len(),
            self.size_bytes()
        )
    }
}

// ---------------------------------------------------------------------------
// Training scratch: the activation/gradient arena of the pooled step path.
// ---------------------------------------------------------------------------

/// How a counted buffer request touched the allocator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufGrowth {
    /// The buffer had no storage; a fresh allocation was made.
    Fresh,
    /// Existing storage was too small and had to grow (a realloc).
    Grown,
    /// Existing capacity covered the request — no allocator traffic.
    Reused,
}

/// Allocation policy of a [`TrainScratch`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScratchPolicy {
    /// Reuse buffer capacity across steps. After one warm-up step the
    /// steady state performs zero heap allocations (the default).
    #[default]
    Pooled,
    /// Replace every requested buffer with a fresh allocation, exactly as
    /// the pre-arena layers did (`input.clone()`, `to_vec()` caches,
    /// fresh im2col panels). This is the honest seed baseline the
    /// `train` bench times the pooled path against.
    Churn,
}

/// Counter snapshot of scratch activity (the [`crate::Tensor`]-side
/// sibling of the cluster pool's `PoolStats`). Counters are plain `u64`s:
/// the scratch is owned by one training thread and handed down the layer
/// stack by `&mut`, so no atomics are needed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Requests that allocated a buffer from nothing.
    pub fresh: u64,
    /// Requests that grew an existing buffer (a realloc).
    pub grown: u64,
    /// Requests served entirely from existing capacity.
    pub reused: u64,
}

impl ScratchStats {
    /// Total allocator events: fresh buffers plus capacity growths. The
    /// steady-state invariant of the pooled path is `allocations() == 0`
    /// per step.
    pub fn allocations(&self) -> u64 {
        self.fresh + self.grown
    }

    /// Total counted buffer requests.
    pub fn requests(&self) -> u64 {
        self.fresh + self.grown + self.reused
    }

    /// Counter-wise difference `self − earlier` (for per-step windows).
    pub fn since(&self, earlier: &ScratchStats) -> ScratchStats {
        ScratchStats {
            fresh: self.fresh - earlier.fresh,
            grown: self.grown - earlier.grown,
            reused: self.reused - earlier.reused,
        }
    }
}

/// The per-step transient arena: counted, recycled storage for
/// activations, gradients, layer caches and im2col panels.
///
/// Layers own their cache buffers (masks, saved activations, col panels)
/// but size them *exclusively* through the counted `ensure_*` helpers
/// here; the ping-pong activation/gradient tensors, the pooled batch
/// tensor and the softmax probability buffer live inside the scratch and
/// are checked out with the `take_*`/`put_*` pairs (a `mem::take` swap —
/// never an allocation).
///
/// ## Warm-up contract
///
/// The first step through a network grows every buffer to its steady
/// size (`fresh`/`grown` events); every later step with the same batch
/// shape is served entirely from capacity (`reused` only). Buffer
/// contents between steps are *unspecified* — every kernel on the pooled
/// path either fully overwrites its output or asks for the `_zeroed`
/// variant (the scatter-accumulate backward passes).
#[derive(Debug, Default)]
pub struct TrainScratch {
    policy: ScratchPolicy,
    stats: ScratchStats,
    // Slot tensors are `Option` so checkout is `Option::take` — a pointer
    // swap, not a `mem::take` that would build a placeholder shape (and
    // its one-word heap allocation) every step.
    ping: Option<Tensor>,
    pong: Option<Tensor>,
    batch: Option<Tensor>,
    probs: Option<Tensor>,
}

impl TrainScratch {
    /// An empty scratch with the given policy.
    pub fn new(policy: ScratchPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// The allocation policy.
    pub fn policy(&self) -> ScratchPolicy {
        self.policy
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> ScratchStats {
        self.stats
    }

    fn tally(&mut self, growth: BufGrowth) {
        match growth {
            BufGrowth::Fresh => self.stats.fresh += 1,
            BufGrowth::Grown => self.stats.grown += 1,
            BufGrowth::Reused => self.stats.reused += 1,
        }
    }

    /// Records one allocation made *outside* the counted entry points (a
    /// legacy layer routed through the allocating shim) so the
    /// zero-allocation regression test still sees it.
    pub fn note_external_alloc(&mut self) {
        self.stats.fresh += 1;
    }

    /// Sizes `buf` to exactly `len` elements through the counting policy.
    /// Contents are unspecified (kept capacity is dirty); callers fully
    /// overwrite. Zero-length requests never touch the allocator or the
    /// counters (an empty `Vec` never allocates).
    pub fn ensure_f32(&mut self, buf: &mut Vec<f32>, len: usize) {
        if len == 0 {
            buf.clear();
            return;
        }
        if self.policy == ScratchPolicy::Churn {
            *buf = vec![0.0; len];
            self.tally(BufGrowth::Fresh);
            return;
        }
        let growth = if buf.capacity() >= len {
            BufGrowth::Reused
        } else if buf.capacity() == 0 {
            BufGrowth::Fresh
        } else {
            BufGrowth::Grown
        };
        if buf.len() > len {
            buf.truncate(len);
        } else {
            buf.resize(len, 0.0);
        }
        self.tally(growth);
    }

    /// [`ensure_f32`](Self::ensure_f32) followed by a zero fill — for
    /// scatter-accumulate targets that relied on `Tensor::zeros`. Under
    /// `Churn` the fresh buffer is already zeroed, so the baseline pays
    /// the fill exactly once, like the seed did.
    pub fn ensure_f32_zeroed(&mut self, buf: &mut Vec<f32>, len: usize) {
        self.ensure_f32(buf, len);
        if self.policy != ScratchPolicy::Churn {
            buf.iter_mut().for_each(|x| *x = 0.0);
        }
    }

    /// `usize`-typed sibling of [`ensure_f32`](Self::ensure_f32) (pooling
    /// argmax indices and label buffers).
    pub fn ensure_usize(&mut self, buf: &mut Vec<usize>, len: usize) {
        if len == 0 {
            buf.clear();
            return;
        }
        if self.policy == ScratchPolicy::Churn {
            *buf = vec![0; len];
            self.tally(BufGrowth::Fresh);
            return;
        }
        let growth = if buf.capacity() >= len {
            BufGrowth::Reused
        } else if buf.capacity() == 0 {
            BufGrowth::Fresh
        } else {
            BufGrowth::Grown
        };
        if buf.len() > len {
            buf.truncate(len);
        } else {
            buf.resize(len, 0);
        }
        self.tally(growth);
    }

    /// Re-shapes `t` to `dims` through the counting policy, reusing its
    /// storage when pooled. Contents are unspecified; callers fully
    /// overwrite (or use [`shape_tensor_zeroed`](Self::shape_tensor_zeroed)).
    pub fn shape_tensor(&mut self, t: &mut Tensor, dims: &[usize]) {
        if self.policy == ScratchPolicy::Churn {
            *t = Tensor::zeros(dims.to_vec());
            if !t.is_empty() {
                self.tally(BufGrowth::Fresh);
            }
            return;
        }
        let growth = t.resize_in_place(dims);
        if !t.is_empty() {
            self.tally(growth);
        }
    }

    /// [`shape_tensor`](Self::shape_tensor) followed by a zero fill — the
    /// pooled replacement for a fresh `Tensor::zeros` that a
    /// scatter-accumulate kernel reads back.
    pub fn shape_tensor_zeroed(&mut self, t: &mut Tensor, dims: &[usize]) {
        self.shape_tensor(t, dims);
        if self.policy != ScratchPolicy::Churn {
            t.fill(0.0);
        }
    }

    /// Checks the forward/backward ping tensor out of the scratch. The
    /// very first checkout builds the (empty) tensor; afterwards the same
    /// storage cycles for the life of the scratch.
    pub fn take_ping(&mut self) -> Tensor {
        self.ping.take().unwrap_or_default()
    }

    /// Returns the ping tensor to the scratch.
    pub fn put_ping(&mut self, t: Tensor) {
        self.ping = Some(t);
    }

    /// Checks the forward/backward pong tensor out of the scratch.
    pub fn take_pong(&mut self) -> Tensor {
        self.pong.take().unwrap_or_default()
    }

    /// Returns the pong tensor to the scratch.
    pub fn put_pong(&mut self, t: Tensor) {
        self.pong = Some(t);
    }

    /// Checks the pooled batch tensor out of the scratch.
    pub fn take_batch(&mut self) -> Tensor {
        self.batch.take().unwrap_or_default()
    }

    /// Returns the pooled batch tensor to the scratch.
    pub fn put_batch(&mut self, t: Tensor) {
        self.batch = Some(t);
    }

    /// Checks the softmax probability tensor out of the scratch.
    pub fn take_probs(&mut self) -> Tensor {
        self.probs.take().unwrap_or_default()
    }

    /// Returns the softmax probability tensor to the scratch.
    pub fn put_probs(&mut self, t: Tensor) {
        self.probs = Some(t);
    }
}

// ---------------------------------------------------------------------------
// Inference scratch: the forward-only view of the same arena machinery.
// ---------------------------------------------------------------------------

/// Forward-only sibling of [`TrainScratch`] for inference sessions.
///
/// An inference replica never runs a backward pass, so it needs none of
/// the gradient-side buffers a training step warms up: no loss
/// probabilities, no backward ping-pong traffic, no col2im scatter
/// panels. `InferScratch` encodes that contract in the type: it is a
/// [`TrainScratch`] that is only ever handed to `forward_into` paths
/// (via [`train_scratch`](Self::train_scratch)), always runs the
/// [`ScratchPolicy::Pooled`] policy, and therefore reaches the same
/// zero-allocations-per-request steady state the training step reaches
/// per step — proved by the same counters ([`stats`](Self::stats)).
///
/// The serving engine (`crates/serve`) holds one `InferScratch` per
/// model replica; together with `Network::strip_gradients` this makes a
/// serving replica allocate zero backward/gradient storage.
#[derive(Debug, Default)]
pub struct InferScratch {
    inner: TrainScratch,
}

impl InferScratch {
    /// An empty forward-only scratch (always [`ScratchPolicy::Pooled`]).
    pub fn new() -> Self {
        Self {
            inner: TrainScratch::new(ScratchPolicy::Pooled),
        }
    }

    /// Snapshot of the allocation counters (same invariant as the
    /// training scratch: a warmed-up request window shows
    /// [`ScratchStats::allocations`] unchanged).
    pub fn stats(&self) -> ScratchStats {
        self.inner.stats()
    }

    /// The counted [`TrainScratch`] view that layer `forward_into`
    /// implementations size their buffers through. Forward-only by
    /// convention: nothing on an inference path calls `backward_into`.
    pub fn train_scratch(&mut self) -> &mut TrainScratch {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ParamArena {
        let mut b = ParamArena::builder();
        b.push("conv1.weight", 6);
        b.push("conv1.bias", 2);
        b.push("fc.weight", 4);
        b.build()
    }

    #[test]
    fn layout_is_back_to_back() {
        let a = sample();
        assert_eq!(a.len(), 12);
        assert_eq!(a.segments()[0].offset, 0);
        assert_eq!(a.segments()[1].offset, 6);
        assert_eq!(a.segments()[2].offset, 8);
        assert_eq!(a.size_bytes(), 48);
    }

    #[test]
    fn segment_views_are_disjoint_windows() {
        let mut a = sample();
        a.segment_mut(1).fill(5.0);
        assert!(a.segment(0).iter().all(|&x| x == 0.0));
        assert!(a.segment(1).iter().all(|&x| x == 5.0));
        assert!(a.segment(2).iter().all(|&x| x == 0.0));
        assert_eq!(a.as_slice()[6], 5.0);
    }

    #[test]
    fn find_by_name() {
        let a = sample();
        assert_eq!(a.find("fc.weight"), Some(2));
        assert_eq!(a.find("missing"), None);
    }

    #[test]
    fn split_mut_returns_all_segments() {
        let mut a = sample();
        {
            let mut views = a.split_mut();
            assert_eq!(views.len(), 3);
            assert_eq!(views[0].len(), 6);
            views[2].fill(1.0);
        }
        assert!(a.segment(2).iter().all(|&x| x == 1.0));
    }

    #[test]
    fn like_copies_layout_not_data() {
        let mut a = sample();
        a.as_mut_slice().fill(3.0);
        let b = ParamArena::like(&a);
        assert_eq!(b.len(), a.len());
        assert_eq!(b.segments(), a.segments());
        assert!(b.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn copy_from_transfers_contents() {
        let mut a = sample();
        a.as_mut_slice().fill(2.0);
        let mut b = ParamArena::like(&a);
        b.copy_from(&a);
        assert_eq!(b.as_slice(), a.as_slice());
    }

    #[test]
    fn flat_arena_single_segment() {
        let a = ParamArena::flat(10);
        assert_eq!(a.segments().len(), 1);
        assert_eq!(a.segments()[0].len, 10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn copy_from_rejects_mismatch() {
        let mut a = ParamArena::flat(3);
        a.copy_from(&ParamArena::flat(4));
    }

    #[test]
    fn scratch_pooled_counts_fresh_then_reused() {
        let mut s = TrainScratch::new(ScratchPolicy::Pooled);
        let mut buf = Vec::new();
        s.ensure_f32(&mut buf, 16);
        assert_eq!(s.stats().fresh, 1);
        s.ensure_f32(&mut buf, 8);
        s.ensure_f32(&mut buf, 16);
        let st = s.stats();
        assert_eq!((st.fresh, st.grown, st.reused), (1, 0, 2));
        assert_eq!(st.allocations(), 1);
        s.ensure_f32(&mut buf, 64);
        assert_eq!(s.stats().grown, 1);
    }

    #[test]
    fn scratch_churn_counts_every_request_as_fresh() {
        let mut s = TrainScratch::new(ScratchPolicy::Churn);
        let mut buf = Vec::new();
        for _ in 0..3 {
            s.ensure_f32(&mut buf, 32);
        }
        let st = s.stats();
        assert_eq!((st.fresh, st.grown, st.reused), (3, 0, 0));
    }

    #[test]
    fn scratch_zero_len_requests_are_uncounted() {
        let mut s = TrainScratch::new(ScratchPolicy::Pooled);
        let mut buf = vec![1.0; 4];
        s.ensure_f32(&mut buf, 0);
        assert!(buf.is_empty());
        assert_eq!(s.stats().requests(), 0);
    }

    #[test]
    fn scratch_zeroed_variant_clears_dirty_capacity() {
        let mut s = TrainScratch::new(ScratchPolicy::Pooled);
        let mut buf = vec![7.0; 8];
        s.ensure_f32_zeroed(&mut buf, 6);
        assert_eq!(buf, vec![0.0; 6]);
    }

    #[test]
    fn scratch_shape_tensor_reuses_storage() {
        let mut s = TrainScratch::new(ScratchPolicy::Pooled);
        let mut t = Tensor::default();
        s.shape_tensor(&mut t, &[4, 8]);
        assert_eq!(t.shape().dims(), &[4, 8]);
        let fresh_after_first = s.stats().fresh;
        s.shape_tensor(&mut t, &[2, 8]);
        s.shape_tensor(&mut t, &[4, 8]);
        assert_eq!(s.stats().fresh, fresh_after_first);
        assert_eq!(s.stats().allocations(), fresh_after_first);
        s.shape_tensor_zeroed(&mut t, &[4, 8]);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn infer_scratch_is_pooled_and_counted() {
        let mut s = InferScratch::new();
        assert_eq!(s.train_scratch().policy(), ScratchPolicy::Pooled);
        let mut buf = Vec::new();
        s.train_scratch().ensure_f32(&mut buf, 32);
        assert_eq!(s.stats().fresh, 1);
        // Steady state: capacity reuse, no allocator traffic.
        let warm = s.stats();
        s.train_scratch().ensure_f32(&mut buf, 32);
        assert_eq!(s.stats().since(&warm).allocations(), 0);
    }

    #[test]
    fn scratch_slots_cycle_without_counting() {
        let mut s = TrainScratch::new(ScratchPolicy::Pooled);
        let mut p = s.take_ping();
        s.shape_tensor(&mut p, &[3, 3]);
        p.fill(2.0);
        s.put_ping(p);
        let p = s.take_ping();
        assert_eq!(p.len(), 9);
        assert_eq!(p.as_slice()[0], 2.0);
        s.put_ping(p);
    }
}
