//! Figure 8: the overall shoot-out — all eight methods, log10 error rate
//! vs time, each point an independent run with its own iteration budget.
//!
//! ```sh
//! cargo run --release -p easgd-bench --bin fig8
//! ```
//!
//! The asynchronous/shared-memory methods run wall-clock; Original and
//! Sync EASGD additionally run on the simulated 4-GPU node (marked
//! `[sim]`), where the paper's communication-cost separation lives.

use easgd::metrics::RunResult;
use easgd::{
    async_easgd, async_measgd, async_msgd, async_sgd, hogwild_easgd, hogwild_sgd,
    original_easgd_sim, original_easgd_turns, sync_easgd_shared, sync_easgd_sim, OriginalMode,
    SimCosts, SyncVariant, TrainConfig,
};
use easgd_bench::{figure_budgets, figure_task, print_run, print_run_header};
use easgd_data::Dataset;
use easgd_nn::Network;

type WallRunner = fn(&Network, &Dataset, &Dataset, &TrainConfig) -> RunResult;

fn main() {
    let (net, train, test) = figure_task();
    let methods: Vec<(WallRunner, f32)> = vec![
        (original_easgd_turns as WallRunner, 0.2),
        (async_sgd as WallRunner, 0.2),
        (async_msgd as WallRunner, 0.02),
        (hogwild_sgd as WallRunner, 0.2),
        (async_easgd as WallRunner, 0.2),
        (async_measgd as WallRunner, 0.02),
        (hogwild_easgd as WallRunner, 0.2),
        (sync_easgd_shared as WallRunner, 0.2),
    ];

    println!("=== Figure 8: all methods, wall-clock (shared-memory node) ===");
    print_run_header();
    for (run, eta) in &methods {
        for &iters in &figure_budgets() {
            let cfg = TrainConfig::figure6(iters).with_eta(*eta);
            print_run(&run(&net, &train, &test, &cfg));
        }
    }

    println!("\n=== Figure 8 (simulated 4-GPU node): the comm-bound separation ===");
    let costs = SimCosts::mnist_lenet_4gpu();
    print_run_header();
    for &iters in &figure_budgets() {
        let cfg = TrainConfig::figure6(iters);
        let mut orig =
            original_easgd_sim(&net, &train, &test, &cfg, &costs, OriginalMode::Pipelined);
        orig.method += " [sim]";
        print_run(&orig);
        let mut sync = sync_easgd_sim(&net, &train, &test, &cfg, &costs, SyncVariant::Easgd3, 0);
        sync.method += " [sim]";
        print_run(&sync);
    }
}
