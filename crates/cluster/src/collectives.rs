//! Executable collectives over the point-to-point layer.
//!
//! The priced collectives in [`crate::comm`] synchronize at a gate and
//! charge a closed-form cost. This module is the *executable* schedule:
//! every message really traverses the point-to-point layer, so simulated
//! time emerges from the α-β send/recv accounting instead of a formula.
//! Two families live here:
//!
//! * [`ring_allreduce_sum`] — reduce-scatter + allgather, `2(P−1)`
//!   messages of `n/P` elements per rank: the bandwidth-optimal pattern
//!   whose cost the
//!   [`allreduce_rabenseifner`](easgd_hardware::collective::allreduce_rabenseifner)
//!   formula approximates, and the reason VGG's weak-scaling efficiency
//!   flattens in Table 4.
//! * [`tree_reduce_sum`] / [`tree_broadcast`] / [`tree_allreduce_sum`] —
//!   binomial trees, `Θ(log P)` full-size messages on the critical path:
//!   the §6.1 schedule Sync EASGD charges for, now executable so Table
//!   3's priced timeline and the running code share one implementation.
//!   The `_among` variants run the same trees over a subgroup of ranks
//!   (Sync EASGD's GPU set, excluding the data-serving CPU rank).
//! * [`flat_gather_sum`] — the `Θ(P)` root-serialized baseline the tree
//!   is measured against in `BENCH_comm.json`.
//!
//! All receive paths use pooled scratch ([`Comm::take_buffer`] /
//! [`Comm::recycle_buffer`]), so steady-state collectives allocate
//! nothing.

use crate::clock::TimeCategory;
use crate::comm::Comm;
use crate::tags;

/// Chunk boundaries: `n` elements into `p` nearly equal chunks.
fn chunk_bounds(n: usize, p: usize, chunk: usize) -> (usize, usize) {
    let base = n / p;
    let extra = n % p;
    let start = chunk * base + chunk.min(extra);
    let len = base + usize::from(chunk < extra);
    (start, start + len)
}

/// In-place ring allreduce-sum of `data` across all ranks of `comm`.
///
/// After the call every rank holds the element-wise sum. Charges real
/// α-β costs for each of the `2(P−1)` ring messages to `category`.
///
/// # Panics
/// Panics if ranks disagree on `data.len()`.
pub fn ring_allreduce_sum(comm: &mut Comm, data: &mut [f32], category: TimeCategory) {
    let p = comm.size();
    if p == 1 {
        return;
    }
    let me = comm.rank();
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    let n = data.len();
    let mut incoming = comm.take_buffer(n.div_ceil(p));

    // Phase 1 — reduce-scatter: after P−1 steps, rank r owns the full sum
    // of chunk (r+1) mod P.
    for step in 0..p - 1 {
        let send_chunk = (me + p - step) % p;
        let recv_chunk = (me + p - step - 1) % p;
        let (s0, s1) = chunk_bounds(n, p, send_chunk);
        let tag = tags::ring(0, step);
        comm.send(right, tag, &data[s0..s1], category);
        comm.recv_into(left, tag, category, &mut incoming);
        let (r0, r1) = chunk_bounds(n, p, recv_chunk);
        assert_eq!(incoming.len(), r1 - r0, "ring chunk size mismatch");
        for (d, v) in data[r0..r1].iter_mut().zip(&incoming) {
            *d += v;
        }
    }
    // Phase 2 — allgather: circulate the completed chunks.
    for step in 0..p - 1 {
        let send_chunk = (me + 1 + p - step) % p;
        let recv_chunk = (me + p - step) % p;
        let (s0, s1) = chunk_bounds(n, p, send_chunk);
        let tag = tags::ring(1, step);
        comm.send(right, tag, &data[s0..s1], category);
        comm.recv_into(left, tag, category, &mut incoming);
        let (r0, r1) = chunk_bounds(n, p, recv_chunk);
        assert_eq!(incoming.len(), r1 - r0, "ring chunk size mismatch");
        data[r0..r1].copy_from_slice(&incoming);
    }
    comm.recycle_buffer(incoming);
}

/// Position of `rank` in `ranks`.
///
/// # Panics
/// Panics if `rank` is not a participant.
fn vrank_of(ranks: &[usize], rank: usize) -> usize {
    ranks
        .iter()
        .position(|&r| r == rank)
        .unwrap_or_else(|| panic!("rank {rank} is not in the participant set {ranks:?}"))
}

/// A rank's position in the binomial tree over `ranks` rooted at `root`
/// — the edge set [`tree_broadcast_among`] / [`tree_reduce_sum_among`]
/// walk, precomputed so segmented (pipelined) schedules traverse the
/// *identical* tree: same parent, same children, same per-element fold
/// order as the serial collectives, which is what makes the pipelined
/// exchange bit-identical to the whole-vector one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeRole {
    /// `(real rank, level mask)` of the tree parent: where a broadcast
    /// is received from and a reduce partial is sent to. `None` for the
    /// root.
    pub parent: Option<(usize, usize)>,
    /// `(real rank, level mask)` of each child, in **mask-descending**
    /// order — the broadcast fan-out order. The reduce gathers children
    /// in the reverse (mask-ascending) order, exactly like the serial
    /// reduce loop.
    pub children: Vec<(usize, usize)>,
}

impl TreeRole {
    /// Computes the role of `me` in the binomial tree over `ranks`
    /// rooted at `root` (both must be participants).
    pub fn compute(ranks: &[usize], root: usize, me: usize) -> TreeRole {
        let p = ranks.len();
        let vroot = vrank_of(ranks, root);
        let vr = (vrank_of(ranks, me) + p - vroot) % p;
        let to_real = |v: usize| ranks[(v + vroot) % p];
        // Climb to the mask at which this rank receives (the root never
        // does) — the broadcast climb loop.
        let mut parent = None;
        let mut mask = 1usize;
        while mask < p {
            if vr & mask != 0 {
                parent = Some((to_real(vr - mask), mask));
                break;
            }
            mask <<= 1;
        }
        // Fan out below that mask — the broadcast send loop.
        let mut children = Vec::new();
        mask >>= 1;
        while mask > 0 {
            if vr + mask < p {
                children.push((to_real(vr + mask), mask));
            }
            mask >>= 1;
        }
        TreeRole { parent, children }
    }
}

/// Binomial-tree reduce-sum over the subgroup `ranks`, rooted at `root`
/// (which must be a member). Every participant calls with its own
/// `data`; after the call **only `root`'s `data` holds the sum** — the
/// other participants' buffers hold partial sums and must be treated as
/// garbage. Non-participant ranks must not call.
///
/// The critical path is `ceil(log2(ranks.len()))` full-size messages —
/// the executable form of
/// [`reduce_tree`](easgd_hardware::collective::reduce_tree).
pub fn tree_reduce_sum_among(
    comm: &mut Comm,
    ranks: &[usize],
    root: usize,
    data: &mut [f32],
    category: TimeCategory,
) {
    let p = ranks.len();
    if p <= 1 {
        return;
    }
    let vroot = vrank_of(ranks, root);
    let vme = vrank_of(ranks, comm.rank());
    // Virtual rank with the root shifted to 0.
    let vr = (vme + p - vroot) % p;
    let to_real = |v: usize| ranks[(v + vroot) % p];
    let mut tmp: Option<Vec<f32>> = None;
    let mut mask = 1usize;
    while mask < p {
        if vr & mask != 0 {
            // My subtree is folded; push it to the parent and stop.
            let parent = to_real(vr - mask);
            comm.send(parent, tags::TREE_REDUCE | mask as u32, data, category);
            break;
        } else if vr + mask < p {
            let child = to_real(vr + mask);
            // The accumulation scratch comes from the pool (taken once,
            // recycled below), keeping the reduce allocation-free in
            // steady state and its buffer ledger balanced.
            if tmp.is_none() {
                tmp = Some(comm.take_buffer(data.len()));
            }
            if let Some(buf) = tmp.as_mut() {
                comm.recv_into(child, tags::TREE_REDUCE | mask as u32, category, buf);
                assert_eq!(buf.len(), data.len(), "tree reduce length mismatch");
                for (d, v) in data.iter_mut().zip(buf.iter()) {
                    *d += v;
                }
            }
        }
        mask <<= 1;
    }
    if let Some(buf) = tmp {
        comm.recycle_buffer(buf);
    }
}

/// [`tree_reduce_sum_among`] over all ranks of the cluster.
pub fn tree_reduce_sum(comm: &mut Comm, root: usize, data: &mut [f32], category: TimeCategory) {
    let ranks: Vec<usize> = (0..comm.size()).collect();
    tree_reduce_sum_among(comm, &ranks, root, data, category);
}

/// Binomial-tree broadcast of `root`'s `data` over the subgroup `ranks`.
/// On return every participant's `data` holds root's contents (lengths
/// must agree across participants).
pub fn tree_broadcast_among(
    comm: &mut Comm,
    ranks: &[usize],
    root: usize,
    data: &mut Vec<f32>,
    category: TimeCategory,
) {
    let p = ranks.len();
    if p <= 1 {
        return;
    }
    let vroot = vrank_of(ranks, root);
    let vme = vrank_of(ranks, comm.rank());
    let vr = (vme + p - vroot) % p;
    let to_real = |v: usize| ranks[(v + vroot) % p];
    // Climb to the mask at which this rank receives (root never does).
    let mut mask = 1usize;
    while mask < p {
        if vr & mask != 0 {
            let parent = to_real(vr - mask);
            comm.recv_into(parent, tags::TREE_BCAST | mask as u32, category, data);
            break;
        }
        mask <<= 1;
    }
    // Then fan out to the subtree below that mask.
    mask >>= 1;
    while mask > 0 {
        if vr + mask < p {
            let child = to_real(vr + mask);
            comm.send(child, tags::TREE_BCAST | mask as u32, data, category);
        }
        mask >>= 1;
    }
}

/// [`tree_broadcast_among`] over all ranks of the cluster.
pub fn tree_broadcast(comm: &mut Comm, root: usize, data: &mut Vec<f32>, category: TimeCategory) {
    let ranks: Vec<usize> = (0..comm.size()).collect();
    tree_broadcast_among(comm, &ranks, root, data, category);
}

/// Executable allreduce: [`tree_reduce_sum_among`] to `root`, then
/// [`tree_broadcast_among`] of the sum — §6.1's `Θ(2 log P)` schedule.
pub fn tree_allreduce_sum_among(
    comm: &mut Comm,
    ranks: &[usize],
    root: usize,
    data: &mut Vec<f32>,
    category: TimeCategory,
) {
    tree_reduce_sum_among(comm, ranks, root, data, category);
    tree_broadcast_among(comm, ranks, root, data, category);
}

/// [`tree_allreduce_sum_among`] over all ranks of the cluster.
pub fn tree_allreduce_sum(comm: &mut Comm, data: &mut Vec<f32>, category: TimeCategory) {
    let ranks: Vec<usize> = (0..comm.size()).collect();
    tree_allreduce_sum_among(comm, &ranks, 0, data, category);
}

/// The `Θ(P)` baseline the tree is measured against: every non-root
/// sends its full vector straight to `root`, whose timeline absorbs the
/// `P−1` transfers *serially* (each priced at the link's α-β cost on the
/// root's clock — a root NIC draining one message at a time). Only
/// `root`'s `data` ends up holding the sum.
pub fn flat_gather_sum(comm: &mut Comm, root: usize, data: &mut [f32], category: TimeCategory) {
    let p = comm.size();
    if p == 1 {
        return;
    }
    if comm.rank() != root {
        // The root's clock carries the transfer cost, mirroring
        // `recv_costed`'s receiver-driven accounting.
        comm.send_costed(root, tags::FLAT_GATHER, data, 0.0, category);
        return;
    }
    let bytes = data.len() * 4;
    let mut tmp = comm.take_buffer(data.len());
    for r in 0..p {
        if r == root {
            continue;
        }
        let transfer = comm.link_time(bytes);
        comm.recv_costed_into(r, tags::FLAT_GATHER, transfer, category, category, &mut tmp);
        assert_eq!(tmp.len(), data.len(), "flat gather length mismatch");
        for (d, v) in data.iter_mut().zip(tmp.iter()) {
            *d += v;
        }
    }
    comm.recycle_buffer(tmp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, VirtualCluster};

    #[test]
    fn chunk_bounds_cover_exactly() {
        for (n, p) in [(10usize, 3usize), (7, 7), (5, 2), (16, 4), (3, 5)] {
            let mut total = 0;
            let mut expected_start = 0;
            for c in 0..p {
                let (s, e) = chunk_bounds(n, p, c);
                assert_eq!(s, expected_start);
                total += e - s;
                expected_start = e;
            }
            assert_eq!(total, n);
        }
    }

    #[test]
    fn matches_gate_allreduce() {
        for p in [2usize, 3, 4, 7] {
            let cfg = ClusterConfig::new(p);
            let outs = VirtualCluster::run(&cfg, |comm| {
                let n = 23;
                let mut ring: Vec<f32> = (0..n).map(|i| (comm.rank() * n + i) as f32).collect();
                let gate = comm.allreduce_sum(&ring, TimeCategory::Other);
                ring_allreduce_sum(comm, &mut ring, TimeCategory::GpuGpuParam);
                (ring, gate)
            });
            for (ring, gate) in outs {
                for (a, b) in ring.iter().zip(&gate) {
                    assert!((a - b).abs() < 1e-3, "p={p}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn single_rank_is_identity() {
        let cfg = ClusterConfig::new(1);
        let outs = VirtualCluster::run(&cfg, |comm| {
            let mut v = vec![1.0f32, 2.0, 3.0];
            ring_allreduce_sum(comm, &mut v, TimeCategory::Other);
            v
        });
        assert_eq!(outs[0], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn short_vectors_with_more_ranks_than_elements() {
        let cfg = ClusterConfig::new(5);
        let outs = VirtualCluster::run(&cfg, |comm| {
            let mut v = vec![1.0f32, 1.0];
            ring_allreduce_sum(comm, &mut v, TimeCategory::Other);
            v
        });
        for v in outs {
            assert_eq!(v, vec![5.0, 5.0]);
        }
    }

    #[test]
    fn ring_charges_bandwidth_efficient_time() {
        // For a large vector the executable ring's simulated time must be
        // close to the Rabenseifner closed form and below the tree cost.
        let p = 8;
        let n = 1_000_000; // 4 MB
        let cfg = ClusterConfig::new(p);
        let link = cfg.link.clone();
        let times = VirtualCluster::run(&cfg, |comm| {
            let mut v = vec![1.0f32; n];
            ring_allreduce_sum(comm, &mut v, TimeCategory::GpuGpuParam);
            comm.now()
        });
        let ring_time = times.iter().cloned().fold(0.0f64, f64::max);
        let tree = 2.0 * easgd_hardware::collective::reduce_tree(&link, p, n * 4);
        assert!(
            ring_time < tree,
            "ring {ring_time:.6}s should beat 2x tree {tree:.6}s for large messages"
        );
        // Within 3x of the ideal closed form (the executable schedule has
        // pipeline fill effects the formula ignores).
        let ideal = easgd_hardware::collective::allreduce_rabenseifner(&link, p, n * 4);
        assert!(ring_time < 3.0 * ideal, "ring {ring_time} vs ideal {ideal}");
    }

    #[test]
    fn tree_allreduce_matches_gate_allreduce() {
        for p in [2usize, 3, 4, 7, 8] {
            let cfg = ClusterConfig::new(p);
            let outs = VirtualCluster::run(&cfg, |comm| {
                let n = 19;
                let mut mine: Vec<f32> = (0..n).map(|i| (comm.rank() * n + i) as f32).collect();
                let gate = comm.allreduce_sum(&mine, TimeCategory::Other);
                tree_allreduce_sum(comm, &mut mine, TimeCategory::GpuGpuParam);
                (mine, gate)
            });
            for (tree, gate) in outs {
                for (a, b) in tree.iter().zip(&gate) {
                    assert!((a - b).abs() < 1e-3, "p={p}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn tree_reduce_delivers_sum_to_root_only_contract() {
        let p = 6;
        let root = 2;
        let cfg = ClusterConfig::new(p);
        let outs = VirtualCluster::run(&cfg, |comm| {
            let mut v = vec![comm.rank() as f32 + 1.0; 5];
            tree_reduce_sum(comm, root, &mut v, TimeCategory::Other);
            v
        });
        let expected: f32 = (1..=p as i32).map(|r| r as f32).sum();
        assert_eq!(outs[root], vec![expected; 5]);
    }

    #[test]
    fn tree_among_subgroup_leaves_outsiders_untouched() {
        // Ranks {1, 2, 3} reduce + broadcast among themselves; rank 0
        // never participates.
        let cfg = ClusterConfig::new(4);
        let participants = [1usize, 2, 3];
        let outs = VirtualCluster::run(&cfg, |comm| {
            let mut v = vec![comm.rank() as f32; 3];
            if participants.contains(&comm.rank()) {
                tree_reduce_sum_among(comm, &participants, 1, &mut v, TimeCategory::Other);
                tree_broadcast_among(comm, &participants, 1, &mut v, TimeCategory::Other);
            }
            v
        });
        assert_eq!(outs[0], vec![0.0; 3]);
        for r in participants {
            assert_eq!(outs[r], vec![6.0; 3], "rank {r}");
        }
    }

    #[test]
    fn executable_tree_time_matches_formula_at_powers_of_two() {
        // At P = 2^k the binomial critical path is exactly
        // ceil(log2 P) serial full-size hops — the reduce_tree formula.
        for p in [2usize, 4, 8] {
            let n = 50_000;
            let cfg = ClusterConfig::new(p);
            let link = cfg.link.clone();
            let times = VirtualCluster::run(&cfg, |comm| {
                let mut v = vec![1.0f32; n];
                tree_reduce_sum(comm, 0, &mut v, TimeCategory::GpuGpuParam);
                comm.now()
            });
            let exec = times.iter().cloned().fold(0.0f64, f64::max);
            let formula = easgd_hardware::collective::reduce_tree(&link, p, n * 4);
            assert!(
                (exec - formula).abs() < 1e-12,
                "p={p}: executable {exec} vs formula {formula}"
            );
        }
        // Off powers of two the executable path can only be faster.
        let p = 6;
        let n = 50_000;
        let cfg = ClusterConfig::new(p);
        let link = cfg.link.clone();
        let times = VirtualCluster::run(&cfg, |comm| {
            let mut v = vec![1.0f32; n];
            tree_reduce_sum(comm, 0, &mut v, TimeCategory::GpuGpuParam);
            comm.now()
        });
        let exec = times.iter().cloned().fold(0.0f64, f64::max);
        let formula = easgd_hardware::collective::reduce_tree(&link, p, n * 4);
        assert!(exec <= formula + 1e-12, "p={p}: {exec} vs {formula}");
    }

    #[test]
    fn tree_role_edges_are_mutually_consistent() {
        // For every participant-set size and root: each non-root has
        // exactly one parent, the parent lists it as a child under the
        // same mask, and the edges form one tree spanning all ranks.
        for p in 1..=9usize {
            let ranks: Vec<usize> = (0..p).map(|r| r + 3).collect(); // offset real ids
            for &root in &ranks {
                let roles: Vec<TreeRole> = ranks
                    .iter()
                    .map(|&me| TreeRole::compute(&ranks, root, me))
                    .collect();
                let mut edges = 0;
                for (i, role) in roles.iter().enumerate() {
                    let me = ranks[i];
                    if me == root {
                        assert!(role.parent.is_none(), "root has no parent");
                    } else {
                        let (parent, mask) = role.parent.expect("non-root has a parent");
                        let pi = ranks.iter().position(|&r| r == parent).unwrap();
                        assert!(
                            roles[pi].children.contains(&(me, mask)),
                            "p={p} root={root}: parent {parent} must list {me} (mask {mask})"
                        );
                        edges += 1;
                    }
                    // Children are in mask-descending (broadcast) order.
                    for w in role.children.windows(2) {
                        assert!(w[0].1 > w[1].1, "children must descend by mask");
                    }
                }
                let total_children: usize = roles.iter().map(|r| r.children.len()).sum();
                assert_eq!(
                    total_children, edges,
                    "every child edge has one parent edge"
                );
                assert_eq!(edges, p - 1, "a spanning tree has p-1 edges");
            }
        }
    }

    #[test]
    fn tree_role_matches_the_serial_broadcast_schedule() {
        // Drive a broadcast purely from TreeRole edges (recv from parent,
        // send to children in listed order) and check it agrees with the
        // serial tree_broadcast_among — same tags, same values.
        let cfg = ClusterConfig::new(5);
        let participants = [0usize, 1, 2, 3, 4];
        let root = 2;
        let outs = VirtualCluster::run(&cfg, |comm| {
            let role = TreeRole::compute(&participants, root, comm.rank());
            let mut data = if comm.rank() == root {
                vec![42.0f32; 4]
            } else {
                Vec::new()
            };
            if let Some((parent, mask)) = role.parent {
                comm.recv_into(
                    parent,
                    tags::TREE_BCAST | mask as u32,
                    TimeCategory::Other,
                    &mut data,
                );
            }
            for &(child, mask) in &role.children {
                comm.send(
                    child,
                    tags::TREE_BCAST | mask as u32,
                    &data,
                    TimeCategory::Other,
                );
            }
            data
        });
        for v in outs {
            assert_eq!(v, vec![42.0; 4]);
        }
    }

    #[test]
    fn tree_reduce_beats_flat_gather_at_eight_ranks() {
        let p = 8;
        let n = 200_000;
        let run = |use_tree: bool| {
            let cfg = ClusterConfig::new(p);
            let times = VirtualCluster::run(&cfg, |comm| {
                let mut v = vec![1.0f32; n];
                if use_tree {
                    tree_reduce_sum(comm, 0, &mut v, TimeCategory::GpuGpuParam);
                } else {
                    flat_gather_sum(comm, 0, &mut v, TimeCategory::GpuGpuParam);
                }
                (comm.now(), v)
            });
            // The root's completion time is the collective's cost.
            assert_eq!(times[0].1, vec![p as f32; n]);
            times[0].0
        };
        let tree = run(true);
        let flat = run(false);
        assert!(
            tree <= flat,
            "tree reduce {tree:.6}s must not exceed flat gather-sum {flat:.6}s at P={p}"
        );
    }
}
