//! Typed handles for nonblocking point-to-point operations.
//!
//! [`Comm::isend`] / [`Comm::isend_from`] / [`Comm::irecv_into`] return a
//! [`Request`]; completion happens at [`Comm::wait`] (or
//! [`Comm::wait_all`] over a [`RequestCollection`]), which is where
//! simulated time is settled and — for receives — where the matched
//! message's pooled carcass is recycled, exactly like the blocking
//! `_into` forms (DESIGN.md §13).
//!
//! The semantics mirror MPI's request objects:
//!
//! * a nonblocking **send** deposits its message at post time (the
//!   payload buffer migrates with it, as in [`Comm::send_from`]); the
//!   sender's NIC injects outstanding sends serially, and `wait` merely
//!   advances the sender's clock to the injection's completion — free if
//!   local compute already ran past it. That residual-only accounting is
//!   the §6.3 overlap mechanism.
//! * a nonblocking **receive** takes ownership of the caller's
//!   destination buffer; matching is deferred to `wait`, which serves
//!   the oldest in-flight `(from, tag)` message FCFS (the same
//!   pending-queue discipline as [`Comm::recv_into`]), copies it into
//!   the buffer, recycles the carcass, and hands the buffer back.
//! * waiting twice on the same request is a bug and panics; dropping a
//!   request without waiting is flagged by a debug assertion (a lost
//!   completion — the runtime mirror of the protocol checker's
//!   outstanding-request ledger).
//!
//! [`Comm::isend`]: crate::Comm::isend
//! [`Comm::isend_from`]: crate::Comm::isend_from
//! [`Comm::irecv_into`]: crate::Comm::irecv_into
//! [`Comm::wait`]: crate::Comm::wait
//! [`Comm::wait_all`]: crate::Comm::wait_all
//! [`Comm::send_from`]: crate::Comm::send_from
//! [`Comm::recv_into`]: crate::Comm::recv_into

use crate::clock::TimeCategory;

/// What an outstanding [`Request`] is waiting for.
#[derive(Debug)]
pub(crate) enum ReqState {
    /// A posted nonblocking send: the message is already in flight;
    /// `completion` is the simulated time at which this rank's NIC
    /// finishes injecting it.
    Send { completion: f64 },
    /// A posted nonblocking receive: matching is deferred to the wait.
    /// `out` is the caller's destination buffer, owned by the request
    /// until completion hands it back.
    Recv {
        from: usize,
        tag: u32,
        out: Vec<f32>,
    },
}

/// A handle to one outstanding nonblocking operation (see the module
/// docs for the completion contract).
#[derive(Debug)]
pub struct Request {
    /// `None` once completed; `wait` on a completed request panics.
    pub(crate) state: Option<ReqState>,
    /// Time category the completion wait is charged to (fixed at post
    /// time, so xtask's tag discipline sees the tag at the call site).
    pub(crate) category: TimeCategory,
}

impl Request {
    pub(crate) fn new(state: ReqState, category: TimeCategory) -> Self {
        Self {
            state: Some(state),
            category,
        }
    }

    /// Whether the request has been completed by a `wait`.
    pub fn is_complete(&self) -> bool {
        self.state.is_none()
    }

    /// Whether this is a receive request (false: send).
    ///
    /// # Panics
    /// Panics if the request has already completed.
    pub fn is_recv(&self) -> bool {
        match self.state.as_ref() {
            Some(ReqState::Recv { .. }) => true,
            Some(ReqState::Send { .. }) => false,
            None => panic!("is_recv on a completed request"),
        }
    }
}

/// Drop-without-wait detection: completing a request is the only way its
/// clock accounting and (for receives) its matched message are settled.
/// A request dropped while still outstanding means the schedule lost a
/// completion — flagged in debug builds, mirroring the protocol
/// checker's terminal outstanding-request check.
impl Drop for Request {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            debug_assert!(
                self.state.is_none(),
                "request dropped without wait: {:?}",
                self.state
            );
        }
    }
}

/// An ordered set of [`Request`]s, for bulk completion via
/// [`Comm::wait_all`](crate::Comm::wait_all) (the shape of an MPI
/// request collection: push handles as operations are posted, complete
/// them together at the synchronization point).
#[derive(Debug, Default)]
pub struct RequestCollection {
    pub(crate) reqs: Vec<Request>,
}

impl RequestCollection {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an outstanding request.
    pub fn push(&mut self, req: Request) {
        self.reqs.push(req);
    }

    /// Number of requests currently held.
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// Whether the collection holds no requests.
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    /// Reserves capacity for at least `n` requests (so steady-state
    /// schedules can push without reallocating).
    pub fn reserve(&mut self, n: usize) {
        self.reqs.reserve(n);
    }
}
