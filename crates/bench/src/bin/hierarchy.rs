//! Hierarchical vs flat collectives on the multi-node multi-GPU cluster
//! (the paper's §10.4 testbed shape; the acknowledgements' “less global
//! communication overhead” design).
//!
//! ```sh
//! cargo run --release -p easgd-bench --bin hierarchy
//! ```

use easgd::hierarchical::{hierarchical_sync_easgd, GpuClusterTopology};
use easgd::TrainConfig;
use easgd_bench::figure_task;
use easgd_hardware::net::AlphaBeta;
use easgd_nn::spec::{spec_googlenet, spec_lenet, spec_vgg19};

fn main() {
    // Analytic comparison on the paper's 16-node × 2-GPU cluster.
    let topo = GpuClusterTopology::paper_k80_cluster();
    println!(
        "Two-level collectives on {} nodes x {} GPUs (PCIe intra, FDR IB inter)\n",
        topo.nodes, topo.gpus_per_node
    );
    println!(
        "{:<12} {:>12} {:>16} {:>12} {:>9}",
        "model", "weights MB", "hierarchical ms", "flat ms", "speedup"
    );
    for spec in [spec_lenet(), spec_googlenet(), spec_vgg19()] {
        let b = spec.weight_bytes();
        let h = topo.hierarchical_cost(b) * 1e3;
        let f = topo.flat_cost(b) * 1e3;
        println!(
            "{:<12} {:>12.1} {:>16.2} {:>12.2} {:>8.2}x",
            spec.name,
            b as f64 / 1e6,
            h,
            f,
            f / h
        );
    }

    // Executable run on a scaled-down topology (real gradients).
    println!("\nExecutable hierarchical Sync EASGD (4 nodes x 2 GPUs, LeNet-tiny):");
    let (net, train, test) = figure_task();
    let small = GpuClusterTopology {
        nodes: 4,
        gpus_per_node: 2,
        intra: AlphaBeta::pcie_gen3_x16(),
        inter: AlphaBeta::fdr_infiniband(),
    };
    let cfg = TrainConfig::figure6(100);
    let r = hierarchical_sync_easgd(&net, &train, &test, &cfg, &small);
    println!(
        "  {}: {:.1}% accuracy, {:.3}s simulated ({} rounds x {} GPUs)",
        r.method,
        r.accuracy * 100.0,
        r.sim_seconds.unwrap(),
        cfg.iterations,
        small.total_gpus()
    );
    let b = r.breakdown.unwrap();
    println!(
        "  comm ratio {:.0}% (gpu-gpu parameter traffic on both levels)",
        b.comm_ratio() * 100.0
    );
}
