//! 2-D convolution via im2col + GEMM.

use crate::layer::{batch_of, Init, Layer, ParamSpec};
use easgd_tensor::{col2im, im2col, Conv2dGeometry};
use easgd_tensor::{gemm, ParamArena, Tensor, Transpose};

/// Convolutional layer.
///
/// Weights are stored `[out_channels, in_channels·k_h·k_w]` row-major —
/// exactly the left operand of the im2col GEMM — plus one bias per output
/// channel.
#[derive(Clone, Debug)]
pub struct Conv2d {
    /// Layer name used for parameter segments.
    pub name: String,
    /// Spatial geometry (input dims, kernel, stride, padding).
    pub geom: Conv2dGeometry,
    /// Number of output channels (filters).
    pub out_channels: usize,
    w_seg: usize,
    b_seg: usize,
    /// Cached im2col matrices, one per sample of the last forward batch.
    col_cache: Vec<Vec<f32>>,
}

impl Conv2d {
    /// A convolution over `geom` producing `out_channels` feature maps.
    pub fn new(name: impl Into<String>, geom: Conv2dGeometry, out_channels: usize) -> Self {
        assert!(geom.is_valid(), "invalid conv geometry {geom:?}");
        assert!(out_channels > 0, "out_channels must be > 0");
        Self {
            name: name.into(),
            geom,
            out_channels,
            w_seg: usize::MAX,
            b_seg: usize::MAX,
            col_cache: Vec::new(),
        }
    }

    /// Elements in the filter bank.
    pub fn weight_len(&self) -> usize {
        self.out_channels * self.geom.col_rows()
    }

    /// Total parameters (weights + biases).
    pub fn num_params(&self) -> usize {
        self.weight_len() + self.out_channels
    }

    /// Per-sample output feature-map size `[out_channels, out_h, out_w]`.
    pub fn output_len(&self) -> usize {
        self.out_channels * self.geom.col_cols()
    }
}

impl Layer for Conv2d {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        let fan_in = self.geom.col_rows();
        let fan_out = self.out_channels * self.geom.k_h * self.geom.k_w;
        vec![
            ParamSpec {
                name: format!("{}.weight", self.name),
                len: self.weight_len(),
                init: Init::Xavier { fan_in, fan_out },
            },
            ParamSpec {
                name: format!("{}.bias", self.name),
                len: self.out_channels,
                init: Init::Constant(0.0),
            },
        ]
    }

    fn bind(&mut self, segments: &[usize]) {
        assert_eq!(segments.len(), 2, "conv expects weight+bias segments");
        self.w_seg = segments[0];
        self.b_seg = segments[1];
    }

    fn out_shape(&self) -> Vec<usize> {
        vec![self.out_channels, self.geom.out_h(), self.geom.out_w()]
    }

    fn forward(&mut self, params: &ParamArena, input: &Tensor, _train: bool) -> Tensor {
        let b = batch_of(input);
        let in_len = self.geom.input_len();
        assert_eq!(
            input.len(),
            b * in_len,
            "conv '{}' expected {} elements/sample, input is {:?}",
            self.name,
            in_len,
            input.shape()
        );
        let w = params.segment(self.w_seg);
        let bias = params.segment(self.b_seg);
        let (rows, cols) = (self.geom.col_rows(), self.geom.col_cols());
        let out_len = self.output_len();
        let mut out = Tensor::zeros([b, self.out_channels, self.geom.out_h(), self.geom.out_w()]);

        self.col_cache.clear();
        self.col_cache.resize(b, Vec::new());
        for (s, col) in self.col_cache.iter_mut().enumerate() {
            col.resize(rows * cols, 0.0);
            let image = &input.as_slice()[s * in_len..(s + 1) * in_len];
            im2col(&self.geom, image, col);
            let y = &mut out.as_mut_slice()[s * out_len..(s + 1) * out_len];
            // Y[oc, ohw] = W[oc, rows] · col[rows, ohw]
            gemm(
                Transpose::No,
                Transpose::No,
                self.out_channels,
                cols,
                rows,
                1.0,
                w,
                col,
                0.0,
                y,
            );
            for (oc, plane) in y.chunks_mut(cols).enumerate() {
                let bc = bias[oc];
                plane.iter_mut().for_each(|v| *v += bc);
            }
        }
        out
    }

    fn backward(
        &mut self,
        params: &ParamArena,
        grads: &mut ParamArena,
        grad_out: &Tensor,
    ) -> Tensor {
        let b = self.col_cache.len();
        assert!(b > 0, "backward called before forward");
        let (rows, cols) = (self.geom.col_rows(), self.geom.col_cols());
        let out_len = self.output_len();
        assert_eq!(grad_out.len(), b * out_len, "grad_out shape mismatch");
        let in_len = self.geom.input_len();
        let w = params.segment(self.w_seg);

        let mut grad_in = Tensor::zeros(vec![
            b,
            self.geom.in_channels,
            self.geom.in_h,
            self.geom.in_w,
        ]);
        let mut grad_col = vec![0.0f32; rows * cols];
        for s in 0..b {
            let gy = &grad_out.as_slice()[s * out_len..(s + 1) * out_len];
            let col = &self.col_cache[s];
            // gradW[oc, rows] += gy[oc, cols] · colᵀ
            gemm(
                Transpose::No,
                Transpose::Yes,
                self.out_channels,
                rows,
                cols,
                1.0,
                gy,
                col,
                1.0,
                grads.segment_mut(self.w_seg),
            );
            // gradB[oc] += Σ gy[oc,:]
            {
                let gb = grads.segment_mut(self.b_seg);
                for (oc, plane) in gy.chunks(cols).enumerate() {
                    gb[oc] += easgd_tensor::ops::sum(plane);
                }
            }
            // gradCol[rows, cols] = Wᵀ[rows, oc] · gy[oc, cols]
            gemm(
                Transpose::Yes,
                Transpose::No,
                rows,
                cols,
                self.out_channels,
                1.0,
                w,
                gy,
                0.0,
                &mut grad_col,
            );
            let gx = &mut grad_in.as_mut_slice()[s * in_len..(s + 1) * in_len];
            col2im(&self.geom, &grad_col, gx);
        }
        grad_in
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        // Caches are transient; cloning the configuration is enough.
        let mut c = self.clone();
        c.col_cache = Vec::new();
        Box::new(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{build_arenas, check_layer};

    fn small_geom() -> Conv2dGeometry {
        Conv2dGeometry {
            in_channels: 2,
            in_h: 5,
            in_w: 5,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn out_shape_follows_geometry() {
        let l = Conv2d::new("c", small_geom(), 4);
        assert_eq!(l.out_shape(), vec![4, 5, 5]);
        assert_eq!(l.num_params(), 4 * 2 * 9 + 4);
    }

    #[test]
    fn identity_kernel_passes_input_through() {
        // 1 input channel, 1 output channel, 1x1 kernel with weight 1 → copy.
        let geom = Conv2dGeometry {
            in_channels: 1,
            in_h: 3,
            in_w: 3,
            k_h: 1,
            k_w: 1,
            stride: 1,
            pad: 0,
        };
        let mut l = Conv2d::new("c", geom, 1);
        let (mut params, _) = build_arenas(&mut l, 1);
        params.segment_mut(0)[0] = 1.0;
        let x = Tensor::from_vec([1, 1, 3, 3], (0..9).map(|i| i as f32).collect());
        let y = l.forward(&params, &x, true);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn bias_is_added_per_channel() {
        let geom = Conv2dGeometry {
            in_channels: 1,
            in_h: 2,
            in_w: 2,
            k_h: 1,
            k_w: 1,
            stride: 1,
            pad: 0,
        };
        let mut l = Conv2d::new("c", geom, 2);
        let (mut params, _) = build_arenas(&mut l, 1);
        params.segment_mut(0).copy_from_slice(&[0.0, 0.0]); // zero kernels
        params.segment_mut(1).copy_from_slice(&[1.5, -2.0]);
        let x = Tensor::zeros([1, 1, 2, 2]);
        let y = l.forward(&params, &x, true);
        assert_eq!(&y.as_slice()[0..4], &[1.5; 4]);
        assert_eq!(&y.as_slice()[4..8], &[-2.0; 4]);
    }

    #[test]
    fn gradients_pass_finite_difference_check() {
        let mut l = Conv2d::new("c", small_geom(), 3);
        let (params, grads) = build_arenas(&mut l, 5);
        check_layer(&mut l, params, grads, &[2, 5, 5], 2, 1e-2, 11);
    }

    #[test]
    fn strided_padded_gradients_pass_check() {
        let geom = Conv2dGeometry {
            in_channels: 1,
            in_h: 7,
            in_w: 6,
            k_h: 3,
            k_w: 2,
            stride: 2,
            pad: 1,
        };
        let mut l = Conv2d::new("c", geom, 2);
        let (params, grads) = build_arenas(&mut l, 6);
        check_layer(&mut l, params, grads, &[1, 7, 6], 3, 1e-2, 12);
    }

    #[test]
    fn batch_samples_are_independent() {
        let mut l = Conv2d::new("c", small_geom(), 2);
        let (params, _) = build_arenas(&mut l, 7);
        let mut rng = easgd_tensor::Rng::new(8);
        let mut x1 = Tensor::zeros([1, 2, 5, 5]);
        rng.fill_normal(x1.as_mut_slice(), 0.0, 1.0);
        let mut x2 = Tensor::zeros([1, 2, 5, 5]);
        rng.fill_normal(x2.as_mut_slice(), 0.0, 1.0);
        let y1 = l.forward(&params, &x1, true);
        let y2 = l.forward(&params, &x2, true);
        let mut both = Tensor::zeros([2, 2, 5, 5]);
        both.as_mut_slice()[..50].copy_from_slice(x1.as_slice());
        both.as_mut_slice()[50..].copy_from_slice(x2.as_slice());
        let y = l.forward(&params, &both, true);
        assert_eq!(&y.as_slice()[..y1.len()], y1.as_slice());
        assert_eq!(&y.as_slice()[y1.len()..], y2.as_slice());
    }
}
