//! The workspace tag-range registry.
//!
//! Every point-to-point tag in the tree — trainer exchanges and
//! executable collectives alike — is drawn from a named constant (or
//! range constructor) defined here, so the full `u32` tag space is
//! partitioned in one auditable place and no two subsystems can collide.
//! xtask lint rule 7 (`tag-discipline`) enforces the discipline: comm
//! call sites in `crates/cluster/src/` and `crates/core/src/` may not
//! pass bare integer literals as tags, and tag constants may not be
//! defined from literals outside this module.
//!
//! Layout (see [`RANGES`] for the machine-readable table):
//!
//! | range                       | owner                                    |
//! |-----------------------------|------------------------------------------|
//! | `0x0100_0000`               | Sync EASGD batch fan-out (CPU → GPUs)    |
//! | `0x0200_0000..=0x0200_0002` | Original EASGD data / center / weight    |
//! | `0x0300_0000`               | Async parameter-server requests          |
//! | `0x0310_0000 + worker`      | Async parameter-server replies           |
//! | `0x0400_0000 + round % 4096`| Hierarchical intra-node reduce rounds    |
//! | `0x4100_0000 \| mask`       | Binomial-tree reduce steps               |
//! | `0x4200_0000 \| mask`       | Binomial-tree broadcast steps            |
//! | `0x4300_0000`               | Flat gather-sum baseline                 |
//! | `0x4400_0000 \| …`          | Nonblocking segmented exchange           |
//! | `0x8000_0000 \| …`          | Ring allreduce (phase, step)             |

/// Sync EASGD's CPU→GPU batch fan-out ([`BatchMsg`](crate::BatchMsg)
/// payloads).
pub const SYNC_DATA: u32 = 0x0100_0000;

/// Original EASGD: one training batch from the master.
pub const ORIG_DATA: u32 = 0x0200_0000;
/// Original EASGD: the center variable `W̄` pushed down to a worker.
pub const ORIG_CENTER: u32 = 0x0200_0001;
/// Original EASGD: a worker's weights pushed up to the master.
pub const ORIG_WEIGHT: u32 = 0x0200_0002;

/// Async parameter server: worker→master requests (gradients or
/// weights, per [`AsyncVariant`](../easgd/enum.AsyncVariant.html)).
pub const ASYNC_REQ: u32 = 0x0300_0000;
/// Base of the async master→worker reply range; use [`async_reply`].
pub const ASYNC_REPLY_BASE: u32 = 0x0310_0000;
/// Width of the async reply range (one tag per worker rank).
pub const ASYNC_REPLY_SPAN: u32 = 0x0001_0000;

/// The async master's reply tag for `worker` (per-destination tags keep
/// a slow worker's stale reply from being matched by a later request
/// cycle on another rank).
pub fn async_reply(worker: usize) -> u32 {
    debug_assert!(
        (worker as u32) < ASYNC_REPLY_SPAN,
        "worker rank out of tag range"
    );
    ASYNC_REPLY_BASE + worker as u32
}

/// Base of the hierarchical intra-node reduce range; use [`hier_round`].
pub const HIER_ROUND_BASE: u32 = 0x0400_0000;
/// Number of distinct round tags before the hierarchical range wraps.
pub const HIER_ROUND_SPAN: u32 = 0x1000;

/// Hierarchical EASGD's per-round intra-node reduce tag. Rounds are
/// disambiguated modulo [`HIER_ROUND_SPAN`] — far more in-flight rounds
/// than any schedule can overlap.
pub fn hier_round(round: usize) -> u32 {
    HIER_ROUND_BASE + (round as u32 % HIER_ROUND_SPAN)
}

/// Binomial-tree reduce steps (`| mask` disambiguates tree levels).
pub const TREE_REDUCE: u32 = 0x4100_0000;
/// Binomial-tree broadcast steps (`| mask` disambiguates tree levels).
pub const TREE_BCAST: u32 = 0x4200_0000;
/// Width of each tree range: the level mask occupies the low 24 bits.
pub const TREE_SPAN: u32 = 0x0100_0000;
/// The flat gather-sum baseline (single tag; sources disambiguate).
pub const FLAT_GATHER: u32 = 0x4300_0000;

/// Base of the nonblocking segmented-exchange range; use [`seg_tree`].
/// Reserved for the pipelined executable tree: every `isend`/`irecv`
/// pair on that path draws its tag from here, so out-of-order waits can
/// never cross-match two segments (or a segment against a whole-vector
/// tree step).
pub const SEG_EXCHANGE_BASE: u32 = 0x4400_0000;
/// Width of the segmented-exchange range: segment (8 bits) << 16,
/// phase (1 bit) << 15, tree level mask (15 bits).
pub const SEG_EXCHANGE_SPAN: u32 = 0x0100_0000;
/// [`seg_tree`] phase selector: the broadcast half of the exchange.
pub const SEG_PHASE_BCAST: u32 = 0;
/// [`seg_tree`] phase selector: the reduce half of the exchange.
pub const SEG_PHASE_REDUCE: u32 = 1;

/// Pipelined segmented-exchange tag: `segment` is the parameter-arena
/// segment index, `phase` is [`SEG_PHASE_BCAST`] or [`SEG_PHASE_REDUCE`],
/// and `mask` is the binomial-tree level (as in the whole-vector tree
/// tags).
pub fn seg_tree(segment: usize, phase: u32, mask: usize) -> u32 {
    debug_assert!(
        segment < 256 && phase < 2 && mask < 0x8000,
        "segmented-exchange tag out of range: segment {segment}, phase {phase}, mask {mask}"
    );
    SEG_EXCHANGE_BASE | ((segment as u32) << 16) | (phase << 15) | (mask as u32)
}

/// Base of the ring-allreduce range; use [`ring`].
pub const RING_BASE: u32 = 0x8000_0000;
/// Width of the ring range: phase (1 bit) << 16 | step (16 bits).
pub const RING_SPAN: u32 = 0x0002_0000;

/// Ring allreduce step tag: `phase` 0 is the reduce-scatter, 1 the
/// allgather; `step` is the ring iteration.
pub fn ring(phase: u32, step: usize) -> u32 {
    debug_assert!(
        phase < 2 && (step as u32) < 0x1_0000,
        "ring tag out of range"
    );
    RING_BASE | (phase << 16) | (step as u32)
}

/// The registry as `(owner, start, width)` half-open ranges — the
/// machine-readable form of the module-level table, used by the
/// disjointness test below and available to diagnostics.
pub const RANGES: &[(&str, u32, u32)] = &[
    ("sync-data", SYNC_DATA, 1),
    ("orig-data", ORIG_DATA, 3),
    ("async-req", ASYNC_REQ, 1),
    ("async-reply", ASYNC_REPLY_BASE, ASYNC_REPLY_SPAN),
    ("hier-round", HIER_ROUND_BASE, HIER_ROUND_SPAN),
    ("tree-reduce", TREE_REDUCE, TREE_SPAN),
    ("tree-bcast", TREE_BCAST, TREE_SPAN),
    ("flat-gather", FLAT_GATHER, 1),
    ("seg-exchange", SEG_EXCHANGE_BASE, SEG_EXCHANGE_SPAN),
    ("ring", RING_BASE, RING_SPAN),
];

/// The registry range containing `tag`, if any (for diagnostics).
pub fn owner_of(tag: u32) -> Option<&'static str> {
    RANGES
        .iter()
        .find(|(_, start, width)| (*start..start + width).contains(&tag))
        .map(|(name, _, _)| *name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_pairwise_disjoint() {
        for (i, (na, sa, wa)) in RANGES.iter().enumerate() {
            for (nb, sb, wb) in &RANGES[i + 1..] {
                let a = *sa as u64..*sa as u64 + *wa as u64;
                let b = *sb as u64..*sb as u64 + *wb as u64;
                assert!(
                    a.end <= b.start || b.end <= a.start,
                    "tag ranges {na} and {nb} overlap"
                );
            }
        }
    }

    #[test]
    fn constructors_stay_inside_their_ranges() {
        assert_eq!(owner_of(async_reply(0)), Some("async-reply"));
        assert_eq!(owner_of(async_reply(65535)), Some("async-reply"));
        assert_eq!(owner_of(hier_round(0)), Some("hier-round"));
        assert_eq!(owner_of(hier_round(123_456)), Some("hier-round"));
        assert_eq!(owner_of(ring(0, 0)), Some("ring"));
        assert_eq!(owner_of(ring(1, 65_535)), Some("ring"));
        assert_eq!(owner_of(TREE_REDUCE | 0x40), Some("tree-reduce"));
        assert_eq!(owner_of(TREE_BCAST | 0x40), Some("tree-bcast"));
        assert_eq!(
            owner_of(seg_tree(0, SEG_PHASE_BCAST, 0)),
            Some("seg-exchange")
        );
        assert_eq!(
            owner_of(seg_tree(255, SEG_PHASE_REDUCE, 0x7fff)),
            Some("seg-exchange")
        );
    }

    #[test]
    fn seg_tree_tags_are_injective_over_the_pipeline_schedule() {
        // Distinct (segment, phase, mask) triples must never collide:
        // out-of-order waits rely on per-segment tag selectivity.
        let mut seen = std::collections::HashSet::new();
        for segment in [0usize, 1, 7, 255] {
            for phase in [SEG_PHASE_BCAST, SEG_PHASE_REDUCE] {
                for mask in [0usize, 1, 2, 4, 0x4000] {
                    assert!(seen.insert(seg_tree(segment, phase, mask)));
                }
            }
        }
    }

    #[test]
    fn owner_of_unregistered_tag_is_none() {
        assert_eq!(owner_of(0x7fff_ffff), None);
    }
}
