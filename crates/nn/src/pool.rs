//! Spatial pooling layers.

use crate::layer::{batch_of, Layer};
use easgd_tensor::{ParamArena, Tensor, TrainScratch};

/// Shared spatial bookkeeping for pooling windows.
#[derive(Clone, Copy, Debug)]
struct PoolGeom {
    channels: usize,
    in_h: usize,
    in_w: usize,
    size: usize,
    stride: usize,
}

impl PoolGeom {
    fn out_h(&self) -> usize {
        (self.in_h - self.size) / self.stride + 1
    }
    fn out_w(&self) -> usize {
        (self.in_w - self.size) / self.stride + 1
    }
    fn in_plane(&self) -> usize {
        self.in_h * self.in_w
    }
    fn out_plane(&self) -> usize {
        self.out_h() * self.out_w()
    }
}

/// Max pooling over square windows.
#[derive(Clone, Debug)]
pub struct MaxPool2d {
    name: String,
    geom: PoolGeom,
    /// For each output element of the last batch: the flat input index of
    /// its maximum (the routing for backward).
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Max pooling on `[channels, in_h, in_w]` maps with the given window
    /// `size` and `stride`.
    ///
    /// # Panics
    /// Panics if the window doesn't fit the input.
    pub fn new(
        name: impl Into<String>,
        channels: usize,
        in_h: usize,
        in_w: usize,
        size: usize,
        stride: usize,
    ) -> Self {
        assert!(size > 0 && stride > 0, "pool size/stride must be > 0");
        assert!(in_h >= size && in_w >= size, "pool window exceeds input");
        Self {
            name: name.into(),
            geom: PoolGeom {
                channels,
                in_h,
                in_w,
                size,
                stride,
            },
            argmax: Vec::new(),
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn out_shape(&self) -> Vec<usize> {
        vec![self.geom.channels, self.geom.out_h(), self.geom.out_w()]
    }

    fn forward_into(
        &mut self,
        _params: &ParamArena,
        input: &Tensor,
        _train: bool,
        out: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        let g = self.geom;
        let b = batch_of(input);
        let in_len = g.channels * g.in_plane();
        assert_eq!(input.len(), b * in_len, "maxpool input shape mismatch");
        let (oh, ow) = (g.out_h(), g.out_w());
        let out_len = g.channels * g.out_plane();
        scratch.shape_tensor(out, &[b, g.channels, oh, ow]);
        scratch.ensure_usize(&mut self.argmax, b * out_len);
        let x = input.as_slice();
        let y = out.as_mut_slice();
        for s in 0..b {
            for c in 0..g.channels {
                let plane_off = s * in_len + c * g.in_plane();
                let out_off = s * out_len + c * g.out_plane();
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best_idx = plane_off + (oy * g.stride) * g.in_w + ox * g.stride;
                        let mut best = x[best_idx];
                        for ky in 0..g.size {
                            for kx in 0..g.size {
                                let idx = plane_off
                                    + (oy * g.stride + ky) * g.in_w
                                    + (ox * g.stride + kx);
                                if x[idx] > best {
                                    best = x[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let o = out_off + oy * ow + ox;
                        y[o] = best;
                        self.argmax[o] = best_idx;
                    }
                }
            }
        }
    }

    fn backward_into(
        &mut self,
        _params: &ParamArena,
        _grads: &mut ParamArena,
        grad_out: &Tensor,
        grad_in: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        let g = &self.geom;
        assert_eq!(
            grad_out.len(),
            self.argmax.len(),
            "backward called with mismatched batch"
        );
        let b = grad_out.len() / (g.channels * g.out_plane());
        // The scatter below accumulates, so the buffer must start zeroed.
        scratch.shape_tensor_zeroed(grad_in, &[b, g.channels, g.in_h, g.in_w]);
        let gx = grad_in.as_mut_slice();
        for (o, &src) in self.argmax.iter().enumerate() {
            gx[src] += grad_out.as_slice()[o];
        }
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        let mut c = self.clone();
        c.argmax = Vec::new();
        Box::new(c)
    }
}

/// Average pooling over square windows.
#[derive(Clone, Debug)]
pub struct AvgPool2d {
    name: String,
    geom: PoolGeom,
    last_batch: usize,
}

impl AvgPool2d {
    /// Average pooling on `[channels, in_h, in_w]` maps.
    ///
    /// # Panics
    /// Panics if the window doesn't fit the input.
    pub fn new(
        name: impl Into<String>,
        channels: usize,
        in_h: usize,
        in_w: usize,
        size: usize,
        stride: usize,
    ) -> Self {
        assert!(size > 0 && stride > 0, "pool size/stride must be > 0");
        assert!(in_h >= size && in_w >= size, "pool window exceeds input");
        Self {
            name: name.into(),
            geom: PoolGeom {
                channels,
                in_h,
                in_w,
                size,
                stride,
            },
            last_batch: 0,
        }
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn out_shape(&self) -> Vec<usize> {
        vec![self.geom.channels, self.geom.out_h(), self.geom.out_w()]
    }

    fn forward_into(
        &mut self,
        _params: &ParamArena,
        input: &Tensor,
        _train: bool,
        out: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        let g = self.geom;
        let b = batch_of(input);
        let in_len = g.channels * g.in_plane();
        assert_eq!(input.len(), b * in_len, "avgpool input shape mismatch");
        self.last_batch = b;
        let (oh, ow) = (g.out_h(), g.out_w());
        let norm = 1.0 / (g.size * g.size) as f32;
        scratch.shape_tensor(out, &[b, g.channels, oh, ow]);
        let x = input.as_slice();
        let y = out.as_mut_slice();
        let out_len = g.channels * g.out_plane();
        for s in 0..b {
            for c in 0..g.channels {
                let plane_off = s * in_len + c * g.in_plane();
                let out_off = s * out_len + c * g.out_plane();
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ky in 0..g.size {
                            for kx in 0..g.size {
                                acc += x[plane_off
                                    + (oy * g.stride + ky) * g.in_w
                                    + (ox * g.stride + kx)];
                            }
                        }
                        y[out_off + oy * ow + ox] = acc * norm;
                    }
                }
            }
        }
    }

    fn backward_into(
        &mut self,
        _params: &ParamArena,
        _grads: &mut ParamArena,
        grad_out: &Tensor,
        grad_in: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        let g = &self.geom;
        let b = self.last_batch;
        assert_eq!(
            grad_out.len(),
            b * g.channels * g.out_plane(),
            "backward called with mismatched batch"
        );
        let (oh, ow) = (g.out_h(), g.out_w());
        let norm = 1.0 / (g.size * g.size) as f32;
        // Overlapping windows accumulate, so the buffer must start zeroed.
        scratch.shape_tensor_zeroed(grad_in, &[b, g.channels, g.in_h, g.in_w]);
        let gx = grad_in.as_mut_slice();
        let gy = grad_out.as_slice();
        let in_len = g.channels * g.in_plane();
        let out_len = g.channels * g.out_plane();
        for s in 0..b {
            for c in 0..g.channels {
                let plane_off = s * in_len + c * g.in_plane();
                let out_off = s * out_len + c * g.out_plane();
                for oy in 0..oh {
                    for ox in 0..ow {
                        let gv = gy[out_off + oy * ow + ox] * norm;
                        for ky in 0..g.size {
                            for kx in 0..g.size {
                                gx[plane_off
                                    + (oy * g.stride + ky) * g.in_w
                                    + (ox * g.stride + kx)] += gv;
                            }
                        }
                    }
                }
            }
        }
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{build_arenas, check_layer};

    #[test]
    fn maxpool_picks_window_maxima() {
        let mut l = MaxPool2d::new("p", 1, 4, 4, 2, 2);
        let x = Tensor::from_vec([1, 1, 4, 4], (0..16).map(|i| i as f32).collect());
        let y = l.forward(&ParamArena::flat(0), &x, true);
        assert_eq!(y.as_slice(), &[5., 7., 13., 15.]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut l = MaxPool2d::new("p", 1, 2, 2, 2, 2);
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 9., 3., 4.]);
        let _ = l.forward(&ParamArena::flat(0), &x, true);
        let gy = Tensor::from_vec([1, 1, 1, 1], vec![5.0]);
        let mut g = ParamArena::flat(0);
        let gx = l.backward(&ParamArena::flat(0), &mut g, &gy);
        assert_eq!(gx.as_slice(), &[0., 5., 0., 0.]);
    }

    #[test]
    fn maxpool_gradcheck() {
        let mut l = MaxPool2d::new("p", 2, 6, 6, 2, 2);
        let (params, grads) = build_arenas(&mut l, 1);
        // Max pooling is piecewise linear; random normal inputs avoid ties.
        check_layer(&mut l, params, grads, &[2, 6, 6], 2, 1e-2, 3);
    }

    #[test]
    fn avgpool_averages() {
        let mut l = AvgPool2d::new("p", 1, 2, 2, 2, 2);
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 2., 3., 6.]);
        let y = l.forward(&ParamArena::flat(0), &x, true);
        assert_eq!(y.as_slice(), &[3.0]);
    }

    #[test]
    fn avgpool_gradcheck() {
        let mut l = AvgPool2d::new("p", 3, 4, 4, 2, 2);
        let (params, grads) = build_arenas(&mut l, 2);
        check_layer(&mut l, params, grads, &[3, 4, 4], 2, 1e-2, 4);
    }

    #[test]
    fn overlapping_stride_supported() {
        // AlexNet uses overlapping 3x3/stride-2 pooling.
        let mut l = MaxPool2d::new("p", 1, 5, 5, 3, 2);
        let x = Tensor::from_vec([1, 1, 5, 5], (0..25).map(|i| i as f32).collect());
        let y = l.forward(&ParamArena::flat(0), &x, true);
        assert_eq!(l.out_shape(), vec![1, 2, 2]);
        assert_eq!(y.as_slice(), &[12., 14., 22., 24.]);
    }

    #[test]
    #[should_panic(expected = "window exceeds input")]
    fn rejects_oversized_window() {
        let _ = MaxPool2d::new("p", 1, 2, 2, 3, 1);
    }
}
