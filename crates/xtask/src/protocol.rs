//! Protocol model checker for the comm layer (DESIGN.md §12).
//!
//! Verifies the tree collectives and the Sync EASGD exchange against
//! deadlock, message-loss, buffer-pool-leak, and FIFO-delivery
//! invariants by exhaustively exploring rank interleavings of an
//! abstract comm model.
//!
//! ## The abstract model
//!
//! A rank's behaviour is a straight-line **program** of
//! [`TraceOp`]s. The global state is, per rank: a program counter, a
//! count of held pooled-buffer credits, and an in-order queue of
//! delivered-but-unmatched messages. The semantics mirror
//! `easgd_cluster::channel` exactly: a send deposits the message
//! directly into the receiver's queue (the production channel pushes
//! into the receiver's mutex-protected queue inside `send`, so arrival
//! order *is* the global interleaving order of sends — there is no
//! separate in-flight delivery transition to model); `recv(from, tag)`
//! matches the oldest queued message from that source with that tag;
//! `recv_any(tag)` matches the oldest with that tag from *any* source
//! (FCFS, like `Comm::next_matching`).
//!
//! The nonblocking request-handle ops (DESIGN.md §13) map onto the same
//! state: `isend` deposits at post time exactly like `send` (the
//! production `isend` hands the payload to the channel when posted —
//! only the *sender clock* settles later, which the untimed model does
//! not track); `irecv` is a rank-local op that records one outstanding
//! receive obligation; `wait(from, tag)` matches like `recv` and
//! discharges the oldest matching obligation. A rank that finishes with
//! an undischarged obligation dropped a request without waiting — the
//! model form of a lost completion.
//!
//! ## Trace-from-production guarantee
//!
//! Programs are not hand-transcribed: [`record_traces`] runs the real
//! collectives / trainer exchange on a [`VirtualCluster`] with
//! [`Comm`]'s trace recorder switched on, and checks the recorded
//! per-rank op sequences. The model can therefore never drift from the
//! implementation — if a refactor changes the message pattern, the
//! checker re-verifies the new pattern automatically.
//!
//! ## Reduction
//!
//! [`check`] with `reduce = true` runs a sleep-set partial-order
//! reduction (Godefroid) over a static independence relation: two
//! visible ops commute unless one can affect what the other matches
//! (sends to the same destination with the same tag when that
//! destination does a `recv_any` on it; a send and the receive that can
//! match it). Sleep sets prune *redundant interleavings* of commuting
//! ops while still visiting every reachable state, so all deadlocks and
//! all terminal states — where the loss/leak/ledger invariants are
//! evaluated — are preserved. Local ops (`TakeBuf`/`Recycle`/`Retire`)
//! commute with everything and are folded into the preceding scheduling
//! point; their violations (double-discharge) depend only on the rank's
//! own prefix, so folding cannot mask one.
//!
//! [`TraceOp`]: easgd_cluster::TraceOp
//! [`Comm`]: easgd_cluster::Comm
//! [`VirtualCluster`]: easgd_cluster::VirtualCluster

use easgd_cluster::collectives::{
    flat_gather_sum, ring_allreduce_sum, tree_allreduce_sum, tree_broadcast_among,
    tree_reduce_sum_among,
};
use easgd_cluster::{tags, BatchMsg, ClusterConfig, Comm, TimeCategory, TraceOp, VirtualCluster};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Exploration counters for one [`check`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Complete executions reaching a terminal or deadlocked state.
    pub executions: u64,
    /// Visible (scheduling-point) steps taken across all executions.
    pub steps: u64,
    /// Branch points where more than one rank was explored.
    pub branches: u64,
    /// Transitions pruned by the sleep-set reduction.
    pub slept: u64,
    /// Whether the execution cap stopped the search early.
    pub truncated: bool,
}

/// A failed invariant with the schedule that reaches it: the sequence
/// of ranks whose visible ops were executed, in order.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Ranks of the visible steps leading to the violation.
    pub schedule: Vec<usize>,
    /// What went wrong, with per-rank detail.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.message)?;
        write!(
            f,
            "  schedule (ranks of visible steps): {:?}",
            self.schedule
        )
    }
}

/// Result of exploring one scenario.
#[derive(Debug)]
pub enum Outcome {
    /// Every explored execution satisfied all invariants.
    Pass(Stats),
    /// Some execution violated an invariant.
    Fail(Box<Violation>, Stats),
}

impl Outcome {
    /// The exploration counters, pass or fail.
    pub fn stats(&self) -> &Stats {
        match self {
            Outcome::Pass(s) => s,
            Outcome::Fail(_, s) => s,
        }
    }
}

/// One message sitting in a receiver's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct InFlight {
    from: usize,
    tag: u32,
    /// Per-(src, dst) send sequence number, for the FIFO invariant.
    seq: u64,
}

/// The abstract global state.
#[derive(Debug, Clone)]
struct State {
    /// Next op index per rank.
    pc: Vec<usize>,
    /// Pooled-buffer credits currently held per rank.
    held: Vec<u64>,
    /// Delivered-but-unmatched messages, per receiving rank, in arrival
    /// order.
    queues: Vec<VecDeque<InFlight>>,
    /// Next send sequence number per (sender, destination).
    next_seq: Vec<Vec<u64>>,
    /// Highest matched sequence per (receiver, sender, tag) — the FIFO
    /// invariant requires strictly increasing matches.
    matched: HashMap<(usize, usize, u32), u64>,
    /// Outstanding nonblocking-receive obligations per rank, keyed by
    /// `(from, tag)`: incremented by `Irecv`, discharged by `Wait`.
    /// Prefix-determined by the rank's own `pc` (like `matched`), so it
    /// stays out of the fingerprint.
    outstanding: Vec<HashMap<(usize, u32), u64>>,
    /// Total pool credits acquired (TakeBuf) and discharged
    /// (Recycle/Retire) across all ranks.
    taken: u64,
    discharged: u64,
}

impl State {
    fn new(p: usize) -> Self {
        State {
            pc: vec![0; p],
            held: vec![0; p],
            queues: vec![VecDeque::new(); p],
            next_seq: vec![vec![0; p]; p],
            matched: HashMap::new(),
            outstanding: vec![HashMap::new(); p],
            taken: 0,
            discharged: 0,
        }
    }

    /// A hashable fingerprint for BFS deduplication. `matched` is
    /// excluded: it is a monotone audit log that never changes
    /// enabledness, and FIFO violations are impossible in the model by
    /// construction (receives match the *oldest* candidate), so two
    /// states equal elsewhere behave identically.
    fn fingerprint(&self) -> (Vec<usize>, Vec<u64>, Vec<Vec<InFlight>>) {
        (
            self.pc.clone(),
            self.held.clone(),
            self.queues
                .iter()
                .map(|q| q.iter().copied().collect())
                .collect(),
        )
    }
}

/// Index of the oldest message in `queue` matching the receive op.
fn match_index(queue: &VecDeque<InFlight>, from: Option<usize>, tag: u32) -> Option<usize> {
    queue
        .iter()
        .position(|m| m.tag == tag && from.is_none_or(|f| m.from == f))
}

/// Executes rank `r`'s next (visible) op. The caller guarantees it is
/// enabled. Returns the invariant-violation message on failure.
fn apply_visible(state: &mut State, r: usize, op: TraceOp) -> Result<(), String> {
    match op {
        TraceOp::Send { to, tag } | TraceOp::Isend { to, tag } => {
            if state.held[r] == 0 {
                return Err(format!(
                    "rank {r} sent {op} without a held pool buffer (send_from of a non-pooled Vec?)"
                ));
            }
            state.held[r] -= 1;
            let seq = state.next_seq[r][to];
            state.next_seq[r][to] += 1;
            state.queues[to].push_back(InFlight { from: r, tag, seq });
        }
        TraceOp::Wait { from, tag } => {
            let posted = state.outstanding[r].entry((from, tag)).or_insert(0);
            if *posted == 0 {
                return Err(format!(
                    "rank {r} ran {op} with no matching posted irecv (wait without a request)"
                ));
            }
            *posted -= 1;
            let i = match_index(&state.queues[r], Some(from), tag)
                .unwrap_or_else(|| panic!("wait scheduled while disabled (rank {r})"));
            let msg = state.queues[r].remove(i).unwrap_or_else(|| unreachable!());
            check_fifo(state, r, &msg)?;
            state.held[r] += 1;
        }
        TraceOp::Recv { from, tag } => {
            let i = match_index(&state.queues[r], Some(from), tag)
                .unwrap_or_else(|| panic!("recv scheduled while disabled (rank {r})"));
            let msg = state.queues[r].remove(i).unwrap_or_else(|| unreachable!());
            check_fifo(state, r, &msg)?;
            state.held[r] += 1;
        }
        TraceOp::RecvAny { tag } => {
            let i = match_index(&state.queues[r], None, tag)
                .unwrap_or_else(|| panic!("recv_any scheduled while disabled (rank {r})"));
            let msg = state.queues[r].remove(i).unwrap_or_else(|| unreachable!());
            check_fifo(state, r, &msg)?;
            state.held[r] += 1;
        }
        local => panic!("local op {local} reached the scheduler"),
    }
    state.pc[r] += 1;
    Ok(())
}

/// Per-(src, dst, tag) FIFO delivery: matched sequence numbers must be
/// strictly increasing. Impossible to violate given oldest-first
/// matching — kept as a model self-check mirroring the
/// `strict-invariants` runtime assertion in `Comm`.
fn check_fifo(state: &mut State, receiver: usize, msg: &InFlight) -> Result<(), String> {
    let key = (receiver, msg.from, msg.tag);
    if let Some(&last) = state.matched.get(&key) {
        if msg.seq <= last {
            return Err(format!(
                "FIFO violation: rank {receiver} matched seq {} from rank {} (tag {:#x}) after seq {last}",
                msg.seq, msg.from, msg.tag
            ));
        }
    }
    state.matched.insert(key, msg.seq);
    Ok(())
}

/// Folds every rank's pending local ops (they commute with everything).
/// Local violations — discharging a buffer that was never taken — are
/// prefix-determined, so folding cannot mask or reorder them.
fn fold_locals(state: &mut State, programs: &[Vec<TraceOp>]) -> Result<(), String> {
    for (r, program) in programs.iter().enumerate() {
        while let Some(op) = program.get(state.pc[r]) {
            if !op.is_local() {
                break;
            }
            match op {
                TraceOp::TakeBuf => {
                    state.held[r] += 1;
                    state.taken += 1;
                }
                TraceOp::Irecv { from, tag } => {
                    *state.outstanding[r].entry((*from, *tag)).or_insert(0) += 1;
                }
                TraceOp::Recycle | TraceOp::Retire => {
                    if state.held[r] == 0 {
                        return Err(format!(
                            "rank {r} ran {op} holding no buffer (double recycle/retire, \
                             or recycling a buffer never taken from the pool)"
                        ));
                    }
                    state.held[r] -= 1;
                    state.discharged += 1;
                }
                _ => unreachable!(),
            }
            state.pc[r] += 1;
        }
    }
    Ok(())
}

/// Rank `r`'s next visible op, if any (call after [`fold_locals`]).
fn next_visible(state: &State, programs: &[Vec<TraceOp>], r: usize) -> Option<TraceOp> {
    programs[r].get(state.pc[r]).copied()
}

/// Whether rank `r`'s next visible op can execute now.
fn is_enabled(state: &State, op: TraceOp, r: usize) -> bool {
    match op {
        TraceOp::Send { .. } | TraceOp::Isend { .. } => true,
        TraceOp::Recv { from, tag } | TraceOp::Wait { from, tag } => {
            match_index(&state.queues[r], Some(from), tag).is_some()
        }
        TraceOp::RecvAny { tag } => match_index(&state.queues[r], None, tag).is_some(),
        _ => unreachable!("local op after fold"),
    }
}

/// Static independence: `true` when executing `a` (on rank `ra`) and
/// `b` (on rank `rb`, co-enabled) in either order reaches the same
/// state. `recv_any_tags[r]` holds every tag rank `r` ever receives
/// with `recv_any` — the one case where the *relative order* of two
/// same-tag sends to one destination is observable.
fn independent(
    a: TraceOp,
    ra: usize,
    b: TraceOp,
    rb: usize,
    recv_any_tags: &[HashSet<u32>],
) -> bool {
    use TraceOp::{Recv, RecvAny, Send};
    // The nonblocking ops touch the same state as their blocking
    // counterparts: an isend deposits like a send, a wait matches like a
    // selective recv.
    let normalize = |op: TraceOp| match op {
        TraceOp::Isend { to, tag } => Send { to, tag },
        TraceOp::Wait { from, tag } => Recv { from, tag },
        other => other,
    };
    let (a, b) = (normalize(a), normalize(b));
    match (a, b) {
        (Send { to: ta, tag: ga }, Send { to: tb, tag: gb }) => {
            !(ta == tb && ga == gb && recv_any_tags[ta].contains(&ga))
        }
        (Send { to, tag: gs }, Recv { from, tag: gr }) => !(to == rb && from == ra && gs == gr),
        (Recv { from, tag: gr }, Send { to, tag: gs }) => !(to == ra && from == rb && gs == gr),
        (Send { to, tag: gs }, RecvAny { tag: gr }) => !(to == rb && gs == gr),
        (RecvAny { tag: gr }, Send { to, tag: gs }) => !(to == ra && gs == gr),
        // Receives touch only their own rank's queue.
        _ => true,
    }
}

/// Checks a terminal state (every rank finished): no undelivered
/// messages, no held buffers, balanced pool ledger.
fn check_terminal(state: &State) -> Result<(), String> {
    let mut problems = Vec::new();
    for (r, q) in state.queues.iter().enumerate() {
        for m in q {
            problems.push(format!(
                "message from rank {} to rank {r} (tag {:#x}) was never received",
                m.from, m.tag
            ));
        }
    }
    for (r, &h) in state.held.iter().enumerate() {
        if h > 0 {
            problems.push(format!(
                "rank {r} finished still holding {h} pooled buffer(s)"
            ));
        }
    }
    for (r, posted) in state.outstanding.iter().enumerate() {
        let mut dangling: Vec<_> = posted.iter().filter(|(_, &k)| k > 0).collect();
        dangling.sort();
        for (&(from, tag), &k) in dangling {
            problems.push(format!(
                "rank {r} finished with {k} outstanding irecv(from={from}, tag={tag:#x}) \
                 never waited (lost completion)"
            ));
        }
    }
    // With empty queues and all-zero held counts the global ledger must
    // balance; an imbalance here means the model itself miscounted.
    if problems.is_empty() && state.taken != state.discharged {
        problems.push(format!(
            "pool ledger imbalance: {} taken vs {} recycled/retired",
            state.taken, state.discharged
        ));
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("; "))
    }
}

/// Describes a deadlock: each blocked rank's wait, plus the wait-for
/// cycle over selective receives when one exists.
fn deadlock_message(state: &State, programs: &[Vec<TraceOp>], runnable: &[usize]) -> String {
    let mut waits = Vec::new();
    let mut wait_for: HashMap<usize, usize> = HashMap::new();
    for &r in runnable {
        match next_visible(state, programs, r) {
            Some(TraceOp::Recv { from, tag }) => {
                waits.push(format!(
                    "rank {r} blocked on recv(from={from}, tag={tag:#x})"
                ));
                wait_for.insert(r, from);
            }
            Some(TraceOp::Wait { from, tag }) => {
                waits.push(format!(
                    "rank {r} blocked on wait(irecv from={from}, tag={tag:#x}) — \
                     the matching send is never posted"
                ));
                wait_for.insert(r, from);
            }
            Some(TraceOp::RecvAny { tag }) => {
                waits.push(format!(
                    "rank {r} blocked on recv_any(tag={tag:#x}) — no matching message will ever arrive"
                ));
            }
            other => waits.push(format!("rank {r} blocked on {other:?}")),
        }
    }
    // Follow recv edges to surface a wait-for cycle when present.
    let mut cycle = None;
    'outer: for &start in wait_for.keys() {
        let mut path = vec![start];
        let mut cur = start;
        while let Some(&next) = wait_for.get(&cur) {
            if let Some(pos) = path.iter().position(|&x| x == next) {
                cycle = Some(path[pos..].to_vec());
                break 'outer;
            }
            path.push(next);
            cur = next;
        }
    }
    let mut msg = format!("deadlock: {}", waits.join("; "));
    if let Some(mut c) = cycle {
        c.push(c[0]);
        let arrows: Vec<String> = c.iter().map(|r| r.to_string()).collect();
        msg.push_str(&format!("; wait-for cycle: {}", arrows.join(" → ")));
    }
    msg
}

/// DFS exploration context.
struct Explorer<'a> {
    programs: &'a [Vec<TraceOp>],
    recv_any_tags: Vec<HashSet<u32>>,
    reduce: bool,
    max_executions: Option<u64>,
    stats: Stats,
    violation: Option<Box<Violation>>,
}

impl Explorer<'_> {
    fn done(&self) -> bool {
        self.violation.is_some()
            || self
                .max_executions
                .is_some_and(|cap| self.stats.executions >= cap)
    }

    /// Explores every schedule from `state`. `sleep` is the sleep-set
    /// bitmask over ranks; `schedule` the visible steps so far.
    fn dfs(&mut self, mut state: State, sleep: u64, schedule: &mut Vec<usize>) {
        if let Err(message) = fold_locals(&mut state, self.programs) {
            self.stats.executions += 1;
            self.violation = Some(Box::new(Violation {
                schedule: schedule.clone(),
                message,
            }));
            return;
        }
        let runnable: Vec<usize> = (0..self.programs.len())
            .filter(|&r| next_visible(&state, self.programs, r).is_some())
            .collect();
        if runnable.is_empty() {
            self.stats.executions += 1;
            if let Err(message) = check_terminal(&state) {
                self.violation = Some(Box::new(Violation {
                    schedule: schedule.clone(),
                    message,
                }));
            }
            return;
        }
        let enabled: Vec<(usize, TraceOp)> = runnable
            .iter()
            .filter_map(|&r| {
                let op = next_visible(&state, self.programs, r)?;
                is_enabled(&state, op, r).then_some((r, op))
            })
            .collect();
        if enabled.is_empty() {
            self.stats.executions += 1;
            self.violation = Some(Box::new(Violation {
                schedule: schedule.clone(),
                message: deadlock_message(&state, self.programs, &runnable),
            }));
            return;
        }
        if enabled.len() > 1 {
            self.stats.branches += 1;
        }
        let mut slept = sleep;
        for &(r, op) in &enabled {
            if self.done() {
                if self.violation.is_none() {
                    self.stats.truncated = true;
                }
                return;
            }
            if self.reduce && slept & (1 << r) != 0 {
                self.stats.slept += 1;
                continue;
            }
            // Child sleep set: previously slept/explored transitions
            // that commute with the chosen one stay redundant below it.
            let mut child_sleep = 0u64;
            if self.reduce {
                for &(s, sop) in &enabled {
                    if slept & (1 << s) != 0 && independent(sop, s, op, r, &self.recv_any_tags) {
                        child_sleep |= 1 << s;
                    }
                }
            }
            let mut child = state.clone();
            self.stats.steps += 1;
            schedule.push(r);
            match apply_visible(&mut child, r, op) {
                Ok(()) => self.dfs(child, child_sleep, schedule),
                Err(message) => {
                    self.stats.executions += 1;
                    self.violation = Some(Box::new(Violation {
                        schedule: schedule.clone(),
                        message,
                    }));
                }
            }
            schedule.pop();
            if self.violation.is_some() {
                return;
            }
            slept |= 1 << r;
        }
    }
}

/// Explores every rank interleaving of `programs` (one straight-line op
/// list per rank) and checks the deadlock / loss / leak / FIFO
/// invariants in every execution. `reduce` switches the sleep-set
/// partial-order reduction on; `max_executions` caps the search (the
/// cap trips `Stats::truncated` rather than erroring).
pub fn check(programs: &[Vec<TraceOp>], reduce: bool, max_executions: Option<u64>) -> Outcome {
    assert!(
        programs.len() <= 64,
        "rank count exceeds the sleep-set bitmask"
    );
    let mut recv_any_tags = vec![HashSet::new(); programs.len()];
    for (r, prog) in programs.iter().enumerate() {
        for op in prog {
            if let TraceOp::RecvAny { tag } = op {
                recv_any_tags[r].insert(*tag);
            }
        }
    }
    let mut ex = Explorer {
        programs,
        recv_any_tags,
        reduce,
        max_executions,
        stats: Stats::default(),
        violation: None,
    };
    ex.dfs(State::new(programs.len()), 0, &mut Vec::new());
    match ex.violation {
        Some(v) => Outcome::Fail(v, ex.stats),
        None => Outcome::Pass(ex.stats),
    }
}

/// Breadth-first search for a violation with the fewest visible steps —
/// the *minimal counterexample schedule* reported for the negative
/// controls. Returns `None` if no violation is reachable within
/// `max_states` explored states.
pub fn shortest_violation(programs: &[Vec<TraceOp>], max_states: u64) -> Option<Box<Violation>> {
    let mut recv_any_tags = vec![HashSet::new(); programs.len()];
    for (r, prog) in programs.iter().enumerate() {
        for op in prog {
            if let TraceOp::RecvAny { tag } = op {
                recv_any_tags[r].insert(*tag);
            }
        }
    }
    let _ = recv_any_tags; // BFS explores unreduced: minimality over all schedules.
    let mut queue: VecDeque<(State, Vec<usize>)> = VecDeque::new();
    let mut seen = HashSet::new();
    queue.push_back((State::new(programs.len()), Vec::new()));
    let mut explored = 0u64;
    while let Some((mut state, schedule)) = queue.pop_front() {
        explored += 1;
        if explored > max_states {
            return None;
        }
        if let Err(message) = fold_locals(&mut state, programs) {
            return Some(Box::new(Violation { schedule, message }));
        }
        if !seen.insert(state.fingerprint()) {
            continue;
        }
        let runnable: Vec<usize> = (0..programs.len())
            .filter(|&r| next_visible(&state, programs, r).is_some())
            .collect();
        if runnable.is_empty() {
            if let Err(message) = check_terminal(&state) {
                return Some(Box::new(Violation { schedule, message }));
            }
            continue;
        }
        let enabled: Vec<(usize, TraceOp)> = runnable
            .iter()
            .filter_map(|&r| {
                let op = next_visible(&state, programs, r)?;
                is_enabled(&state, op, r).then_some((r, op))
            })
            .collect();
        if enabled.is_empty() {
            return Some(Box::new(Violation {
                schedule,
                message: deadlock_message(&state, programs, &runnable),
            }));
        }
        for (r, op) in enabled {
            let mut child = state.clone();
            let mut child_schedule = schedule.clone();
            child_schedule.push(r);
            match apply_visible(&mut child, r, op) {
                Ok(()) => queue.push_back((child, child_schedule)),
                Err(message) => {
                    return Some(Box::new(Violation {
                        schedule: child_schedule,
                        message,
                    }))
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Program recording: run the production code, keep its trace.
// ---------------------------------------------------------------------------

/// Runs `body` on a `p`-rank [`VirtualCluster`] with trace recording on
/// and returns each rank's recorded op sequence — the per-rank programs
/// the checker explores.
pub fn record_traces<F>(p: usize, body: F) -> Vec<Vec<TraceOp>>
where
    F: Fn(&mut Comm) + Send + Sync,
{
    let cfg = ClusterConfig::new(p);
    VirtualCluster::run(&cfg, |comm| {
        comm.trace_start();
        body(comm);
        comm.trace_take()
    })
}

/// Programs of [`tree_reduce_sum_among`] over all `p` ranks.
pub fn trace_tree_reduce(p: usize, root: usize) -> Vec<Vec<TraceOp>> {
    let ranks: Vec<usize> = (0..p).collect();
    record_traces(p, move |comm| {
        let mut data = vec![comm.rank() as f32 + 1.0; 4];
        tree_reduce_sum_among(comm, &ranks, root, &mut data, TimeCategory::Other);
    })
}

/// Programs of [`tree_broadcast_among`] over all `p` ranks.
pub fn trace_tree_broadcast(p: usize, root: usize) -> Vec<Vec<TraceOp>> {
    let ranks: Vec<usize> = (0..p).collect();
    record_traces(p, move |comm| {
        let mut data = if comm.rank() == root {
            vec![7.0; 4]
        } else {
            Vec::new()
        };
        tree_broadcast_among(comm, &ranks, root, &mut data, TimeCategory::Other);
    })
}

/// Programs of the executable allreduce ([`tree_allreduce_sum`]).
pub fn trace_tree_allreduce(p: usize) -> Vec<Vec<TraceOp>> {
    record_traces(p, |comm| {
        let mut data = vec![comm.rank() as f32; 4];
        tree_allreduce_sum(comm, &mut data, TimeCategory::Other);
    })
}

/// Programs of [`flat_gather_sum`] over all `p` ranks.
pub fn trace_flat_gather(p: usize, root: usize) -> Vec<Vec<TraceOp>> {
    record_traces(p, move |comm| {
        let mut data = vec![1.0; 4];
        flat_gather_sum(comm, root, &mut data, TimeCategory::Other);
    })
}

/// Programs of [`ring_allreduce_sum`] over all `p` ranks.
pub fn trace_ring_allreduce(p: usize) -> Vec<Vec<TraceOp>> {
    record_traces(p, |comm| {
        let mut data = vec![comm.rank() as f32; 8];
        ring_allreduce_sum(comm, &mut data, TimeCategory::Other);
    })
}

/// Programs of one Sync EASGD2/3 round on `g` GPUs plus the data CPU
/// (`P = g + 1`): rank 0 fans a packed [`BatchMsg`] out to every GPU
/// through the pool, each GPU decodes it, and the GPU set runs the
/// production [`tree_exchange_round`](easgd::sync::tree_exchange_round)
/// (tree broadcast of the center + tree reduce of the contributions,
/// center on rank 1) — exactly the per-iteration comm structure of the
/// `SyncExchange::ExecutableTree` trainer.
pub fn trace_sync_exchange(g: usize) -> Vec<Vec<TraceOp>> {
    let participants: Vec<usize> = (1..=g).collect();
    record_traces(g + 1, move |comm| {
        let me = comm.rank();
        let pixels = [0.25f32; 4];
        let labels = [1usize];
        if me == 0 {
            for j in 1..=g {
                let mut buf = comm.take_buffer(3 + labels.len() + pixels.len());
                BatchMsg::encode_into(&pixels, &labels, &mut buf);
                comm.send_from_costed(j, tags::SYNC_DATA, buf, 0.0, TimeCategory::CpuGpuData);
            }
            return;
        }
        let mut payload = Vec::new();
        comm.recv_into(0, tags::SYNC_DATA, TimeCategory::Other, &mut payload);
        let mut got_labels = Vec::new();
        let decoded = BatchMsg::decode_into(&payload, 1, &mut got_labels);
        assert!(decoded.is_ok(), "batch codec: {:?}", decoded.err());
        let center = vec![0.5f32; 4];
        let mut center_t = Vec::new();
        let mut weight_sum = vec![0.0f32; 4];
        easgd::sync::tree_exchange_round(
            comm,
            &participants,
            1,
            &center,
            &mut center_t,
            &mut weight_sum,
            TimeCategory::GpuGpuParam,
            |center_t, weight_sum| {
                weight_sum.clear();
                weight_sum.extend_from_slice(center_t);
            },
        );
    })
}

/// Programs of one *pipelined* Sync EASGD round on `g` GPUs plus the
/// data CPU: the same shape as [`trace_sync_exchange`], but the GPU set
/// runs the production
/// [`tree_exchange_pipelined`](easgd::sync::tree_exchange_pipelined) —
/// the segmented nonblocking broadcast/reduce built on
/// `isend`/`irecv_into`/`wait` — exactly the per-iteration comm
/// structure of the `SyncExchange::PipelinedTree` trainer.
pub fn trace_pipelined_exchange(g: usize, segments: usize) -> Vec<Vec<TraceOp>> {
    let participants: Vec<usize> = (1..=g).collect();
    record_traces(g + 1, move |comm| {
        let me = comm.rank();
        let pixels = [0.25f32; 4];
        let labels = [1usize];
        if me == 0 {
            for j in 1..=g {
                let mut buf = comm.take_buffer(3 + labels.len() + pixels.len());
                BatchMsg::encode_into(&pixels, &labels, &mut buf);
                comm.send_from_costed(j, tags::SYNC_DATA, buf, 0.0, TimeCategory::CpuGpuData);
            }
            return;
        }
        let mut payload = Vec::new();
        comm.recv_into(0, tags::SYNC_DATA, TimeCategory::Other, &mut payload);
        let mut got_labels = Vec::new();
        let decoded = BatchMsg::decode_into(&payload, 1, &mut got_labels);
        assert!(decoded.is_ok(), "batch codec: {:?}", decoded.err());
        let center = vec![0.5f32; 4];
        let mut center_t = vec![0.0f32; 4];
        let mut weight_sum = vec![0.0f32; 4];
        easgd::sync::tree_exchange_pipelined(
            comm,
            &participants,
            1,
            &center,
            &mut center_t,
            &mut weight_sum,
            TimeCategory::GpuGpuParam,
            segments,
            |_comm: &mut Comm, _s| {},
            |_range, center_seg, sum_seg: &mut [f32]| sum_seg.copy_from_slice(center_seg),
        );
    })
}

// ---------------------------------------------------------------------------
// Negative controls: deliberately broken protocols the checker must catch.
// ---------------------------------------------------------------------------

/// Two ranks that each receive before sending: deadlocked from the
/// start, with a 0 → 1 → 0 wait-for cycle.
pub fn negative_cyclic_pair() -> Vec<Vec<TraceOp>> {
    let t = tags::SYNC_DATA;
    vec![
        vec![
            TraceOp::Recv { from: 1, tag: t },
            TraceOp::Recycle,
            TraceOp::TakeBuf,
            TraceOp::Send { to: 1, tag: t },
        ],
        vec![
            TraceOp::Recv { from: 0, tag: t },
            TraceOp::Recycle,
            TraceOp::TakeBuf,
            TraceOp::Send { to: 0, tag: t },
        ],
    ]
}

/// A schedule-dependent deadlock: rank 0 takes *any* message first and
/// then insists on one from rank 1 specifically. If the FCFS `recv_any`
/// happens to consume rank 1's message, the selective receive starves.
/// Only some interleavings fail — the case partial-order reduction must
/// not prune away.
pub fn negative_recv_any_starvation() -> Vec<Vec<TraceOp>> {
    let t = tags::SYNC_DATA;
    vec![
        vec![
            TraceOp::RecvAny { tag: t },
            TraceOp::Retire,
            TraceOp::Recv { from: 1, tag: t },
            TraceOp::Retire,
        ],
        vec![TraceOp::TakeBuf, TraceOp::Send { to: 0, tag: t }],
        vec![TraceOp::TakeBuf, TraceOp::Send { to: 0, tag: t }],
    ]
}

/// A tree broadcast whose last leaf drops its `Recycle`: the production
/// trace of [`trace_tree_broadcast`] with the final local op removed —
/// a pool leak in every terminal state.
pub fn negative_leaky_broadcast() -> Vec<Vec<TraceOp>> {
    let mut programs = trace_tree_broadcast(4, 0);
    let leaked = programs[3].pop();
    assert_eq!(
        leaked,
        Some(TraceOp::Recycle),
        "fixture drift: expected a trailing recycle"
    );
    programs
}

/// A sender that posts two messages where the receiver only ever takes
/// one: the second is undelivered in every terminal state.
pub fn negative_lost_message() -> Vec<Vec<TraceOp>> {
    let a = tags::SYNC_DATA;
    let b = tags::ORIG_DATA;
    vec![
        vec![
            TraceOp::TakeBuf,
            TraceOp::Send { to: 1, tag: a },
            TraceOp::TakeBuf,
            TraceOp::Send { to: 1, tag: b },
        ],
        vec![TraceOp::Recv { from: 0, tag: a }, TraceOp::Recycle],
    ]
}

/// A wait on an irecv whose matching send is never posted: rank 0
/// pre-posts a segment receive and blocks in `wait` forever while
/// rank 1 does nothing — the minimal nonblocking deadlock. The checker
/// must report it with an *empty* schedule (no visible step is ever
/// enabled).
pub fn negative_unmatched_wait() -> Vec<Vec<TraceOp>> {
    let t = tags::seg_tree(0, tags::SEG_PHASE_BCAST, 1);
    vec![
        vec![
            TraceOp::TakeBuf,
            TraceOp::Irecv { from: 1, tag: t },
            TraceOp::Wait { from: 1, tag: t },
            TraceOp::Recycle,
            TraceOp::Recycle,
        ],
        Vec::new(),
    ]
}

// ---------------------------------------------------------------------------
// The scenario suite shared by the CLI and the root test-suite.
// ---------------------------------------------------------------------------

/// One named model-checking scenario.
pub struct Scenario {
    /// Display name.
    pub name: &'static str,
    /// Per-rank programs to explore.
    pub programs: Vec<Vec<TraceOp>>,
    /// Whether every execution must satisfy the invariants.
    pub expect_pass: bool,
    /// Whether the CLI also runs the unreduced search to report the
    /// partial-order-reduction factor.
    pub compare_naive: bool,
}

/// The scenario suite. `smoke` keeps to the P=4 instances CI runs per
/// push; the full suite (scheduled / manual CI job, and the acceptance
/// run) adds P=5–6 and the ring.
pub fn suite(smoke: bool) -> Vec<Scenario> {
    let mut s = vec![
        Scenario {
            name: "tree_reduce(P=4, root=0)",
            programs: trace_tree_reduce(4, 0),
            expect_pass: true,
            compare_naive: true,
        },
        Scenario {
            name: "tree_broadcast(P=4, root=0)",
            programs: trace_tree_broadcast(4, 0),
            expect_pass: true,
            compare_naive: true,
        },
        Scenario {
            name: "tree_allreduce(P=4)",
            programs: trace_tree_allreduce(4),
            expect_pass: true,
            compare_naive: true,
        },
        Scenario {
            name: "flat_gather_sum(P=4, root=0)",
            programs: trace_flat_gather(4, 0),
            expect_pass: true,
            compare_naive: true,
        },
        Scenario {
            name: "sync_easgd_exchange(G=3)",
            programs: trace_sync_exchange(3),
            expect_pass: true,
            compare_naive: true,
        },
        Scenario {
            name: "sync_easgd_pipelined_exchange(G=3, S=2)",
            programs: trace_pipelined_exchange(3, 2),
            expect_pass: true,
            compare_naive: true,
        },
        Scenario {
            name: "negative: cyclic send/recv pair",
            programs: negative_cyclic_pair(),
            expect_pass: false,
            compare_naive: false,
        },
        Scenario {
            name: "negative: recv_any starvation",
            programs: negative_recv_any_starvation(),
            expect_pass: false,
            compare_naive: false,
        },
        Scenario {
            name: "negative: leaking broadcast leaf",
            programs: negative_leaky_broadcast(),
            expect_pass: false,
            compare_naive: false,
        },
        Scenario {
            name: "negative: lost message",
            programs: negative_lost_message(),
            expect_pass: false,
            compare_naive: false,
        },
        Scenario {
            name: "negative: wait on a never-matched irecv",
            programs: negative_unmatched_wait(),
            expect_pass: false,
            compare_naive: false,
        },
    ];
    if !smoke {
        s.extend([
            Scenario {
                name: "tree_reduce(P=6, root=2)",
                programs: trace_tree_reduce(6, 2),
                expect_pass: true,
                compare_naive: false,
            },
            Scenario {
                name: "tree_broadcast(P=5, root=1)",
                programs: trace_tree_broadcast(5, 1),
                expect_pass: true,
                compare_naive: false,
            },
            Scenario {
                name: "tree_allreduce(P=6)",
                programs: trace_tree_allreduce(6),
                expect_pass: true,
                compare_naive: false,
            },
            Scenario {
                name: "ring_allreduce(P=3)",
                programs: trace_ring_allreduce(3),
                expect_pass: true,
                compare_naive: false,
            },
            Scenario {
                name: "sync_easgd_exchange(G=5)",
                programs: trace_sync_exchange(5),
                expect_pass: true,
                compare_naive: false,
            },
            Scenario {
                name: "sync_easgd_pipelined_exchange(G=3, S=3)",
                programs: trace_pipelined_exchange(3, 3),
                expect_pass: true,
                compare_naive: false,
            },
        ]);
    }
    s
}

/// Execution cap for the reduced search (safety net; the suite's
/// scenarios stay far below it).
pub const REDUCED_CAP: u64 = 2_000_000;
/// Execution cap for the naive comparison runs (the unreduced schedule
/// space can be astronomically larger; a truncated naive count still
/// lower-bounds the reduction factor).
pub const NAIVE_CAP: u64 = 200_000;

#[cfg(test)]
mod tests {
    use super::*;

    fn visible_len(programs: &[Vec<TraceOp>]) -> usize {
        programs
            .iter()
            .flatten()
            .filter(|op| !op.is_local())
            .count()
    }

    #[test]
    fn two_rank_handshake_passes() {
        let t = tags::SYNC_DATA;
        let programs = vec![
            vec![TraceOp::TakeBuf, TraceOp::Send { to: 1, tag: t }],
            vec![TraceOp::Recv { from: 0, tag: t }, TraceOp::Recycle],
        ];
        assert!(matches!(check(&programs, true, None), Outcome::Pass(_)));
        assert!(matches!(check(&programs, false, None), Outcome::Pass(_)));
    }

    #[test]
    fn reduction_explores_fewer_executions_same_verdict() {
        let programs = trace_tree_reduce(4, 0);
        let naive = check(&programs, false, None);
        let reduced = check(&programs, true, None);
        assert!(matches!(naive, Outcome::Pass(_)));
        assert!(matches!(reduced, Outcome::Pass(_)));
        assert!(
            reduced.stats().executions <= naive.stats().executions,
            "reduced {} > naive {}",
            reduced.stats().executions,
            naive.stats().executions
        );
    }

    #[test]
    fn cyclic_pair_deadlocks_immediately() {
        let programs = negative_cyclic_pair();
        let Outcome::Fail(v, _) = check(&programs, true, None) else {
            panic!("cyclic pair must deadlock");
        };
        assert!(v.message.contains("deadlock"), "{}", v.message);
        assert!(v.message.contains("wait-for cycle"), "{}", v.message);
        let minimal = shortest_violation(&programs, 10_000).expect("violation");
        assert!(
            minimal.schedule.is_empty(),
            "deadlocked before any visible step"
        );
    }

    #[test]
    fn recv_any_starvation_found_with_and_without_reduction() {
        let programs = negative_recv_any_starvation();
        for reduce in [false, true] {
            let Outcome::Fail(v, _) = check(&programs, reduce, None) else {
                panic!("starvation must be found (reduce={reduce})");
            };
            assert!(v.message.contains("deadlock"), "{}", v.message);
        }
        let minimal = shortest_violation(&programs, 100_000).expect("violation");
        assert_eq!(minimal.schedule.len(), 3, "schedule {:?}", minimal.schedule);
    }

    #[test]
    fn leak_and_loss_are_reported() {
        let Outcome::Fail(v, _) = check(&negative_leaky_broadcast(), true, None) else {
            panic!("leak must be found");
        };
        assert!(v.message.contains("holding"), "{}", v.message);
        let Outcome::Fail(v, _) = check(&negative_lost_message(), true, None) else {
            panic!("loss must be found");
        };
        assert!(v.message.contains("never received"), "{}", v.message);
    }

    #[test]
    fn double_recycle_is_a_local_violation() {
        let t = tags::SYNC_DATA;
        let programs = vec![
            vec![TraceOp::TakeBuf, TraceOp::Send { to: 1, tag: t }],
            vec![
                TraceOp::Recv { from: 0, tag: t },
                TraceOp::Recycle,
                TraceOp::Recycle,
            ],
        ];
        let Outcome::Fail(v, _) = check(&programs, true, None) else {
            panic!("double recycle must be found");
        };
        assert!(v.message.contains("holding no buffer"), "{}", v.message);
    }

    #[test]
    fn unmatched_wait_is_a_minimal_deadlock() {
        let programs = negative_unmatched_wait();
        let Outcome::Fail(v, _) = check(&programs, true, None) else {
            panic!("unmatched wait must deadlock");
        };
        assert!(v.message.contains("deadlock"), "{}", v.message);
        assert!(v.message.contains("wait(irecv"), "{}", v.message);
        let minimal = shortest_violation(&programs, 10_000).expect("violation");
        assert!(
            minimal.schedule.is_empty(),
            "wait deadlocks before any visible step, got {:?}",
            minimal.schedule
        );
    }

    #[test]
    fn dangling_irecv_is_a_lost_completion() {
        // Rank 0 posts an irecv (then recycles its landing buffer instead
        // of waiting); rank 1's send arrives but is never matched. The
        // terminal state must report both the undelivered message and the
        // never-waited request.
        let t = tags::seg_tree(1, tags::SEG_PHASE_REDUCE, 2);
        let programs = vec![
            vec![
                TraceOp::TakeBuf,
                TraceOp::Irecv { from: 1, tag: t },
                TraceOp::Recycle,
            ],
            vec![TraceOp::TakeBuf, TraceOp::Send { to: 0, tag: t }],
        ];
        let Outcome::Fail(v, _) = check(&programs, true, None) else {
            panic!("dangling irecv must be found");
        };
        assert!(v.message.contains("lost completion"), "{}", v.message);
        assert!(v.message.contains("never received"), "{}", v.message);
    }

    #[test]
    fn wait_without_a_posted_irecv_is_rejected() {
        // A wait with no matching irecv on the books is a protocol bug
        // even when a message happens to be deliverable.
        let t = tags::SYNC_DATA;
        let programs = vec![
            vec![
                TraceOp::Wait { from: 1, tag: t },
                TraceOp::Recycle,
                TraceOp::Recycle,
            ],
            vec![TraceOp::TakeBuf, TraceOp::Send { to: 0, tag: t }],
        ];
        let Outcome::Fail(v, _) = check(&programs, true, None) else {
            panic!("wait without request must be found");
        };
        assert!(
            v.message.contains("wait without a request"),
            "{}",
            v.message
        );
    }

    #[test]
    fn pipelined_trace_uses_the_nonblocking_vocabulary() {
        let a = trace_pipelined_exchange(3, 2);
        let b = trace_pipelined_exchange(3, 2);
        assert_eq!(a, b, "trace recording must be deterministic");
        let count = |pred: fn(&TraceOp) -> bool| a.iter().flatten().filter(|op| pred(op)).count();
        let isends = count(|op| matches!(op, TraceOp::Isend { .. }));
        let irecvs = count(|op| matches!(op, TraceOp::Irecv { .. }));
        let waits = count(|op| matches!(op, TraceOp::Wait { .. }));
        assert!(isends > 0, "pipelined exchange must post isends");
        assert_eq!(
            irecvs, waits,
            "every pre-posted irecv is waited exactly once"
        );
        assert!(irecvs > 0, "pipelined exchange must pre-post irecvs");
    }

    #[test]
    fn production_scenarios_verify_exhaustively() {
        for sc in suite(true) {
            let outcome = check(&sc.programs, true, Some(REDUCED_CAP));
            assert!(!outcome.stats().truncated, "{} truncated", sc.name);
            match (sc.expect_pass, &outcome) {
                (true, Outcome::Pass(_)) | (false, Outcome::Fail(..)) => {}
                (true, Outcome::Fail(v, _)) => panic!("{} failed: {v}", sc.name),
                (false, Outcome::Pass(_)) => panic!("{} unexpectedly passed", sc.name),
            }
        }
    }

    #[test]
    fn recorded_traces_are_deterministic_and_balanced() {
        let a = trace_sync_exchange(3);
        let b = trace_sync_exchange(3);
        assert_eq!(a, b, "trace recording must be deterministic");
        let sends = a
            .iter()
            .flatten()
            .filter(|op| matches!(op, TraceOp::Send { .. }))
            .count();
        let recvs = a
            .iter()
            .flatten()
            .filter(|op| matches!(op, TraceOp::Recv { .. } | TraceOp::RecvAny { .. }))
            .count();
        assert_eq!(sends, recvs, "every send needs a receive");
        assert!(
            visible_len(&a) >= 7,
            "G=3 exchange should have ≥7 visible ops"
        );
    }

    #[test]
    fn ring_allreduce_trace_verifies() {
        let programs = trace_ring_allreduce(3);
        assert!(matches!(
            check(&programs, true, Some(REDUCED_CAP)),
            Outcome::Pass(_)
        ));
    }
}
