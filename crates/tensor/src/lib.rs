//! # easgd-tensor
//!
//! Dense `f32` tensor and parallel linear-algebra substrate for the
//! `knl-easgd` reproduction of *“Scaling Deep Learning on GPU and Knights
//! Landing clusters”* (SC '17).
//!
//! The paper's workers each run real forward/backward propagation; this
//! crate provides the kernels those workers need:
//!
//! * [`Tensor`] — an owned, row-major dense tensor with shape metadata.
//! * [`gemm()`](gemm::gemm) — cache-blocked, packed single-precision matrix
//!   multiply with transpose variants (the workhorse of dense and
//!   convolutional layers), fanned out over the persistent worker pool in
//!   [`par`]; the seed kernel is retained as [`gemm_naive()`](gemm::gemm_naive)
//!   for in-repo A/B measurement (see DESIGN.md §8).
//! * [`im2col()`](im2col::im2col) / [`col2im()`](im2col::col2im) — the lowering used to express convolution as
//!   GEMM, exactly as cuDNN-era frameworks did.
//! * [`ParamArena`] — a *packed*, contiguous parameter buffer with named
//!   segments. This is the substrate for the paper's §5.2 “single-layer
//!   communication” optimization: one contiguous allocation means the whole
//!   model is one message.
//! * [`TrainScratch`] — the activation-side arena: counted, recycled
//!   storage for per-step activations, gradients, layer caches and im2col
//!   panels, making the steady-state training step allocation-free
//!   (DESIGN.md §11).
//! * [`AtomicF32`] / [`AtomicBuffer`] — lock-free shared weights for the
//!   Hogwild-style algorithms (§3.2, Hogwild EASGD).
//! * [`Rng`] — a small deterministic xorshift generator with Box–Muller
//!   normals and Xavier initialization, so every experiment is reproducible
//!   bit-for-bit (the paper stresses Sync EASGD's determinism).

pub mod arena;
pub mod atomic;
pub mod gemm;
pub mod im2col;
pub mod ops;
pub mod par;
pub mod rng;
pub mod shape;
pub mod simd;
pub mod tensor;

pub use arena::{
    BufGrowth, InferScratch, ParamArena, ScratchPolicy, ScratchStats, Segment, TrainScratch,
};
pub use atomic::{AtomicBuffer, AtomicF32};
pub use gemm::{gemm, gemm_naive, gemm_naive_par, gemm_rowstable, gemm_serial, matmul, Transpose};
pub use im2col::{col2im, im2col, Conv2dGeometry};
pub use ops::*;
pub use rng::Rng;
pub use shape::Shape;
pub use simd::{active_tier, with_scalar_kernels};
pub use tensor::Tensor;
