//! The [`Layer`] trait: the unit of forward/backward propagation.
//!
//! Layers do **not** own their parameters. All parameters of a network
//! live in one packed [`ParamArena`] (§5.2 of the paper); a layer only
//! remembers the indices of the arena segments it was assigned at build
//! time. Gradients are accumulated into a second arena with identical
//! layout. This makes “send the whole model” a single contiguous message
//! and lets optimizer updates run as flat-slice kernels.

use easgd_tensor::{ParamArena, Rng, Tensor, TrainScratch};

/// How a parameter segment is initialized.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Init {
    /// Xavier/Glorot uniform with the given fan-in and fan-out
    /// (Algorithm 1 line 2: “random and Xavier weight filling”).
    Xavier {
        /// Fan-in of the layer.
        fan_in: usize,
        /// Fan-out of the layer.
        fan_out: usize,
    },
    /// Gaussian `N(0, std²)`.
    Normal {
        /// Standard deviation.
        std: f32,
    },
    /// All elements set to a constant (biases).
    Constant(f32),
}

impl Init {
    /// Fills `buf` according to the scheme, drawing from `rng`.
    pub fn fill(&self, buf: &mut [f32], rng: &mut Rng) {
        match *self {
            Init::Xavier { fan_in, fan_out } => rng.fill_xavier(buf, fan_in, fan_out),
            Init::Normal { std } => rng.fill_normal(buf, 0.0, std),
            Init::Constant(c) => buf.iter_mut().for_each(|x| *x = c),
        }
    }
}

/// Declaration of one parameter segment a layer needs.
#[derive(Clone, Debug)]
pub struct ParamSpec {
    /// Segment name (unique within the network, e.g. `"conv1.weight"`).
    pub name: String,
    /// Number of `f32` elements.
    pub len: usize,
    /// Initialization scheme.
    pub init: Init,
}

/// One differentiable stage of a network.
///
/// The contract:
/// * [`param_specs`](Layer::param_specs) declares the segments the layer
///   needs; [`bind`](Layer::bind) later hands it the arena indices that
///   were allocated for those segments, in the same order.
/// * [`forward_into`](Layer::forward_into) consumes a batch
///   `[B, …in_shape]` and writes `[B, …out_shape]` into a caller-owned
///   tensor, caching whatever it needs for backward. The layer shapes
///   `out` itself (through the counted scratch) and sizes every internal
///   cache through the scratch's `ensure_*` helpers, so a warmed-up step
///   performs zero heap allocations (DESIGN.md §11).
/// * [`backward_into`](Layer::backward_into) consumes `∂L/∂output`,
///   **accumulates** `∂L/∂params` into `grads` (callers zero the arena
///   per step), and writes `∂L/∂input` into `grad_in`.
/// * [`forward`](Layer::forward) / [`backward`](Layer::backward) are the
///   original allocating forms, now provided as shims over the `_into`
///   kernels (mirroring the PR 4 `_into` collectives). The defaults are
///   mutually defined — a layer must implement at least one form of each
///   pair; all in-tree layers implement the `_into` kernels so the
///   golden digests lock the pooled path.
pub trait Layer: Send + Sync {
    /// Display name for diagnostics and segment naming.
    fn name(&self) -> String;

    /// Parameter segments required by this layer (empty for stateless
    /// layers such as activations and pooling).
    fn param_specs(&self) -> Vec<ParamSpec> {
        Vec::new()
    }

    /// Receives the arena segment indices allocated for
    /// [`param_specs`](Layer::param_specs), in order.
    fn bind(&mut self, _segments: &[usize]) {}

    /// Output shape (excluding the batch dimension).
    fn out_shape(&self) -> Vec<usize>;

    /// Forward propagation on a batch. `train` distinguishes training
    /// from inference (dropout behaves differently).
    ///
    /// Allocating shim over [`forward_into`](Layer::forward_into); the
    /// throwaway scratch means every call pays fresh allocations. Hot
    /// paths go through `Network::forward_backward`'s pooled scratch.
    fn forward(&mut self, params: &ParamArena, input: &Tensor, train: bool) -> Tensor {
        let mut out = Tensor::default();
        let mut scratch = TrainScratch::default();
        self.forward_into(params, input, train, &mut out, &mut scratch);
        out
    }

    /// Backward propagation: accumulates parameter gradients into `grads`
    /// and returns the gradient with respect to the layer input.
    ///
    /// Allocating shim over [`backward_into`](Layer::backward_into); see
    /// [`forward`](Layer::forward).
    fn backward(
        &mut self,
        params: &ParamArena,
        grads: &mut ParamArena,
        grad_out: &Tensor,
    ) -> Tensor {
        let mut grad_in = Tensor::default();
        let mut scratch = TrainScratch::default();
        self.backward_into(params, grads, grad_out, &mut grad_in, &mut scratch);
        grad_in
    }

    /// Forward propagation writing into a caller-owned output tensor,
    /// sizing it and every internal cache through the counted `scratch`.
    ///
    /// Default: delegates to the allocating [`forward`](Layer::forward)
    /// (for layers outside this crate that predate the pooled path) and
    /// records the detour on the scratch counters so the zero-allocation
    /// invariant still observes it.
    fn forward_into(
        &mut self,
        params: &ParamArena,
        input: &Tensor,
        train: bool,
        out: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        *out = self.forward(params, input, train);
        scratch.note_external_alloc();
    }

    /// Backward propagation writing `∂L/∂input` into a caller-owned
    /// tensor; see [`forward_into`](Layer::forward_into).
    fn backward_into(
        &mut self,
        params: &ParamArena,
        grads: &mut ParamArena,
        grad_out: &Tensor,
        grad_in: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        *grad_in = self.backward(params, grads, grad_out);
        scratch.note_external_alloc();
    }

    /// Clones the layer (including its configuration, excluding transient
    /// caches is permitted) into a box. Needed because every worker in a
    /// distributed run owns its own network replica (data parallelism,
    /// §2.3).
    fn boxed_clone(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// Batch size of a `[B, …]` tensor.
pub(crate) fn batch_of(t: &Tensor) -> usize {
    assert!(t.shape().rank() >= 1, "batched tensor must have rank >= 1");
    t.shape().dim(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_init_respects_bound() {
        let mut rng = Rng::new(1);
        let mut buf = vec![0.0; 256];
        Init::Xavier {
            fan_in: 10,
            fan_out: 22,
        }
        .fill(&mut buf, &mut rng);
        let bound = (6.0f32 / 32.0).sqrt();
        assert!(buf.iter().all(|x| x.abs() <= bound));
    }

    #[test]
    fn constant_init_sets_everything() {
        let mut rng = Rng::new(1);
        let mut buf = vec![1.0; 8];
        Init::Constant(0.25).fill(&mut buf, &mut rng);
        assert!(buf.iter().all(|&x| x == 0.25));
    }

    #[test]
    fn normal_init_spreads() {
        let mut rng = Rng::new(2);
        let mut buf = vec![0.0; 1000];
        Init::Normal { std: 0.1 }.fill(&mut buf, &mut rng);
        let mean = buf.iter().sum::<f32>() / 1000.0;
        assert!(mean.abs() < 0.02);
        assert!(buf.iter().any(|&x| x != buf[0]));
    }
}
