//! Pooled training-step invariants: the `_into` layer forms are
//! bit-identical to the allocating shims under dirty buffer reuse, and
//! the steady-state step performs zero counted scratch allocations
//! (DESIGN.md §11).

use knl_easgd::nn::gradcheck::build_arenas;
use knl_easgd::nn::inception::{Inception, InceptionConfig};
use knl_easgd::nn::models::lenet_tiny;
use knl_easgd::nn::{
    AvgPool2d, BatchNorm, Conv2d, Dense, Dropout, Flatten, Layer, LocalResponseNorm, MaxPool2d,
    Relu, Sigmoid, Tanh,
};
use knl_easgd::prelude::*;
use knl_easgd::tensor::{Conv2dGeometry, TrainScratch};
use proptest::prelude::*;

/// Boundary batch sizes the pooled path must survive: growth, shrink,
/// and re-growth of every cached buffer.
const BATCHES: [usize; 5] = [1, 2, 3, 5, 8];

/// One instance of every deterministic layer type, with its per-sample
/// input shape. Index range is `LAYER_KINDS`.
fn make_layer(kind: usize) -> (Box<dyn Layer>, Vec<usize>) {
    let geom = Conv2dGeometry {
        in_channels: 2,
        in_h: 6,
        in_w: 6,
        k_h: 3,
        k_w: 3,
        stride: 1,
        pad: 1,
    };
    match kind {
        0 => (Box::new(Relu::new("relu", vec![3, 4, 4])), vec![3, 4, 4]),
        1 => (Box::new(Tanh::new("tanh", vec![3, 4, 4])), vec![3, 4, 4]),
        2 => (Box::new(Sigmoid::new("sig", vec![3, 4, 4])), vec![3, 4, 4]),
        3 => (Box::new(Dense::new("fc", 12, 7)), vec![12]),
        4 => (Box::new(Conv2d::new("conv", geom, 4)), vec![2, 6, 6]),
        5 => (
            Box::new(MaxPool2d::new("max", 2, 6, 6, 2, 2)),
            vec![2, 6, 6],
        ),
        6 => (
            Box::new(AvgPool2d::new("avg", 2, 6, 6, 2, 2)),
            vec![2, 6, 6],
        ),
        7 => (Box::new(BatchNorm::new("bn", 3, 16)), vec![3, 4, 4]),
        8 => (
            Box::new(LocalResponseNorm::new("lrn", 3, 4, 4)),
            vec![3, 4, 4],
        ),
        9 => (Box::new(Flatten::new("flat", vec![3, 4, 4])), vec![3, 4, 4]),
        10 => (
            Box::new(Inception::new(
                "inc",
                4,
                6,
                6,
                InceptionConfig {
                    c1: 2,
                    c3_reduce: 2,
                    c3: 3,
                    c5_reduce: 2,
                    c5: 2,
                    pool_proj: 2,
                },
            )),
            vec![4, 6, 6],
        ),
        _ => unreachable!("unknown layer kind"),
    }
}

const LAYER_KINDS: usize = 11;

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}[{i}]: {x} vs {y} differ in bits"
        );
    }
}

/// Drives `pooled` through persistent, dirty scratch buffers and `shim`
/// through the allocating default forms, over the same input sequence,
/// asserting bitwise agreement of outputs, input gradients, and
/// accumulated parameter gradients every round.
fn check_rounds(
    pooled: &mut dyn Layer,
    shim: &mut dyn Layer,
    in_shape: &[usize],
    batches: &[usize],
    seed: u64,
) {
    let (params_a, mut grads_a) = build_arenas(pooled, seed);
    let (params_b, mut grads_b) = build_arenas(shim, seed);
    assert_bits_eq(params_a.as_slice(), params_b.as_slice(), "init params");

    let mut rng = Rng::new(seed ^ 0x5eed);
    let mut scratch = TrainScratch::default();
    let mut out = Tensor::default();
    let mut grad_in = Tensor::default();

    for &batch in batches {
        let mut shape = vec![batch];
        shape.extend_from_slice(in_shape);
        let mut x = Tensor::zeros(shape);
        rng.fill_normal(x.as_mut_slice(), 0.0, 1.0);

        pooled.forward_into(&params_a, &x, true, &mut out, &mut scratch);
        let want_out = shim.forward(&params_b, &x, true);
        assert_eq!(out.shape().dims(), want_out.shape().dims(), "out shape");
        assert_bits_eq(out.as_slice(), want_out.as_slice(), "forward");

        let mut gy = Tensor::zeros(out.shape().dims().to_vec());
        rng.fill_normal(gy.as_mut_slice(), 0.0, 1.0);
        pooled.backward_into(&params_a, &mut grads_a, &gy, &mut grad_in, &mut scratch);
        let want_gin = shim.backward(&params_b, &mut grads_b, &gy);
        assert_eq!(
            grad_in.shape().dims(),
            want_gin.shape().dims(),
            "grad_in shape"
        );
        assert_bits_eq(grad_in.as_slice(), want_gin.as_slice(), "backward");
        assert_bits_eq(grads_a.as_slice(), grads_b.as_slice(), "param grads");
    }
}

proptest! {
    /// `forward_into`/`backward_into` under dirty buffer reuse are
    /// bit-identical to the allocating shims, across every layer type
    /// and shrinking/growing batch sizes.
    #[test]
    fn pooled_layers_match_allocating_shims(
        kind in 0usize..LAYER_KINDS,
        picks in proptest::collection::vec(0usize..BATCHES.len(), 2..6),
        seed in 1u64..1000,
    ) {
        let batches: Vec<usize> = picks.iter().map(|&i| BATCHES[i]).collect();
        let (mut pooled, in_shape) = make_layer(kind);
        let (mut shim, _) = make_layer(kind);
        check_rounds(pooled.as_mut(), shim.as_mut(), &in_shape, &batches, seed);
    }

    /// Dropout draws its mask from a layer-owned RNG; two instances with
    /// the same seed and input sequence must agree bitwise between the
    /// pooled and allocating paths.
    #[test]
    fn pooled_dropout_matches_allocating_shim(
        picks in proptest::collection::vec(0usize..BATCHES.len(), 2..6),
        seed in 1u64..1000,
    ) {
        let batches: Vec<usize> = picks.iter().map(|&i| BATCHES[i]).collect();
        let mut pooled = Dropout::new("drop", vec![3, 4, 4], 0.4, 77);
        let mut shim = Dropout::new("drop", vec![3, 4, 4], 0.4, 77);
        check_rounds(&mut pooled, &mut shim, &[3, 4, 4], &batches, seed);
    }
}

/// The tentpole invariant: after the warm-up step, a training step
/// performs zero counted scratch allocations.
#[test]
fn steady_state_step_makes_no_scratch_allocations() {
    let mut net = lenet_tiny(11);
    let mut rng = Rng::new(12);
    let mut shape = vec![4];
    shape.extend_from_slice(net.input_shape());
    let mut x = Tensor::zeros(shape);
    rng.fill_normal(x.as_mut_slice(), 0.0, 1.0);
    let labels = [0usize, 1, 2, 1];

    // Warm-up: the first step is allowed (expected) to allocate.
    let _ = net.forward_backward(&x, &labels);
    let warm = net.scratch_stats();
    assert!(
        warm.allocations() > 0,
        "warm-up step should have populated the scratch"
    );

    for step in 0..3 {
        let _ = net.forward_backward(&x, &labels);
        let now = net.scratch_stats();
        let delta = now.since(&warm);
        assert_eq!(
            delta.allocations(),
            0,
            "steady-state step {step} allocated: {delta:?}"
        );
        assert!(
            delta.reused > 0,
            "steady-state step {step} should reuse pooled buffers"
        );
    }
}

/// Shrinking the batch must not allocate either — buffers only ever grow.
#[test]
fn smaller_batch_reuses_the_warm_scratch() {
    let mut net = lenet_tiny(21);
    let mut rng = Rng::new(22);
    let make = |rng: &mut Rng, b: usize, net: &Network| {
        let mut shape = vec![b];
        shape.extend_from_slice(net.input_shape());
        let mut x = Tensor::zeros(shape);
        rng.fill_normal(x.as_mut_slice(), 0.0, 1.0);
        x
    };
    let big = make(&mut rng, 6, &net);
    let small = make(&mut rng, 2, &net);
    let _ = net.forward_backward(&big, &[0, 1, 2, 0, 1, 2]);
    let warm = net.scratch_stats();
    let _ = net.forward_backward(&small, &[1, 2]);
    let delta = net.scratch_stats().since(&warm);
    assert_eq!(delta.allocations(), 0, "shrunk batch allocated: {delta:?}");
}
