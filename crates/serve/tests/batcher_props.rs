//! Property tests for the micro-batcher and engine dispatch order,
//! plus the FCFS-fairness regression.
//!
//! The contract under test (DESIGN.md §16):
//!
//! 1. The dispatch log is totally ordered by `(ready time, shard id)`,
//!    with FCFS as the tie-break within an equal key (a shard can close
//!    two cap batches at the same instant).
//! 2. Within a shard, requests are served strictly FCFS.
//! 3. Every submitted request completes exactly once after a drain.
//! 4. Every batch closed by the rule “cap requests or deadline µs,
//!    whichever first”: its ready time is the cap-filling arrival or
//!    the head's arrival plus the deadline, never later than the
//!    deadline, and its size never exceeds the cap.
//! 5. Replaying a workload on a warm engine performs zero pooled
//!    allocations.
//! 6. No shard starves under asymmetric load: a trickle shard's tail
//!    latency is bounded by its own deadline + service time even while
//!    another shard is saturated.

use easgd_serve::{BatcherConfig, NullBackend, ServeEngine, ServiceModel};
use proptest::prelude::*;

const SAMPLE_LEN: usize = 3;

fn engine(shards: usize, cap: usize, deadline_us: u64) -> ServeEngine<NullBackend> {
    ServeEngine::new(
        BatcherConfig {
            shards,
            batch_cap: cap,
            deadline_us,
            sample_len: SAMPLE_LEN,
        },
        ServiceModel::new(80.0, 5.0),
        NullBackend,
    )
}

/// Feeds a workload of `(gap, shard)` pairs (gap 0 produces same-instant
/// arrivals) and drains. Returns the engine for inspection.
fn run_workload(
    shards: usize,
    cap: usize,
    deadline_us: u64,
    load: &[(u64, usize)],
) -> ServeEngine<NullBackend> {
    let mut e = engine(shards, cap, deadline_us);
    e.reserve(load.len());
    feed(&mut e, 0, load);
    e.drain();
    e
}

fn feed(e: &mut ServeEngine<NullBackend>, start_us: u64, load: &[(u64, usize)]) -> u64 {
    let shards = e.config().shards;
    let mut t = start_us;
    for &(gap, shard) in load {
        t += gap;
        let _ = e.submit(t, shard % shards, &mut |px| px.fill(1.0));
    }
    t
}

proptest! {
    #[test]
    fn dispatch_log_is_a_ready_shard_total_order(
        shards in 2usize..5,
        cap in 1usize..9,
        deadline in 40u64..400,
        load in collection::vec((0u64..120, 0usize..5), 1usize..200),
    ) {
        let e = run_workload(shards, cap, deadline, &load);
        let recs = e.dispatches();
        // (1) sorted by (ready, shard); FCFS inside an equal key means
        // the first request id of consecutive equal-key batches increases.
        let mut walked = 0usize;
        let mut prev_key = None;
        let mut prev_first_id = None;
        for r in recs {
            let chunk = &e.completions()[walked..walked + r.size];
            walked += r.size;
            let key = (r.ready_us, r.shard);
            if let Some(p) = prev_key {
                prop_assert!(p <= key, "dispatch log out of order: {p:?} then {key:?}");
                if p == key {
                    prop_assert!(
                        prev_first_id < Some(chunk[0].id),
                        "equal-key batches must keep close order"
                    );
                }
            }
            prev_key = Some(key);
            prev_first_id = Some(chunk[0].id);
        }
    }

    #[test]
    fn shards_serve_strictly_fcfs(
        shards in 2usize..5,
        cap in 1usize..9,
        deadline in 40u64..400,
        load in collection::vec((0u64..120, 0usize..5), 1usize..200),
    ) {
        let e = run_workload(shards, cap, deadline, &load);
        // Ids are assigned in submission order and each shard's queue is
        // FIFO, so the completion stream of a shard must be id-increasing.
        let mut last_id = vec![None::<u64>; shards];
        for c in e.completions() {
            prop_assert!(
                last_id[c.shard] < Some(c.id),
                "shard {} served id {} after a later request",
                c.shard,
                c.id
            );
            last_id[c.shard] = Some(c.id);
        }
    }

    #[test]
    fn drain_completes_every_request_exactly_once(
        shards in 2usize..5,
        cap in 1usize..9,
        deadline in 40u64..400,
        load in collection::vec((0u64..120, 0usize..5), 1usize..200),
    ) {
        let e = run_workload(shards, cap, deadline, &load);
        prop_assert_eq!(e.pending(), 0);
        let mut ids: Vec<u64> = e.completions().iter().map(|c| c.id).collect();
        ids.sort_unstable();
        let want: Vec<u64> = (0..load.len() as u64).collect();
        prop_assert_eq!(ids, want);
    }

    #[test]
    fn batches_close_at_cap_or_deadline_whichever_first(
        shards in 2usize..5,
        cap in 1usize..9,
        deadline in 40u64..400,
        load in collection::vec((0u64..120, 0usize..5), 1usize..200),
    ) {
        let e = run_workload(shards, cap, deadline, &load);
        let mut walked = 0usize;
        for r in e.dispatches() {
            let chunk = &e.completions()[walked..walked + r.size];
            walked += r.size;
            prop_assert!(r.size >= 1 && r.size <= cap, "size {} vs cap {cap}", r.size);
            let head = chunk[0].arrival_us;
            let last = chunk[r.size - 1].arrival_us;
            prop_assert!(
                r.ready_us <= head + deadline,
                "batch held past its deadline: ready {} head {head} T {deadline}",
                r.ready_us
            );
            prop_assert!(
                (r.size == cap && r.ready_us == last) || r.ready_us == head + deadline,
                "ready {} is neither the cap-filling arrival {last} nor head {head} + {deadline}",
                r.ready_us
            );
            prop_assert!(r.start_us >= r.ready_us as f64, "started before close");
        }
    }

    #[test]
    fn replaying_a_workload_on_a_warm_engine_is_zero_alloc(
        shards in 2usize..4,
        cap in 1usize..9,
        deadline in 40u64..400,
        load in collection::vec((0u64..120, 0usize..4), 1usize..120),
    ) {
        let mut e = engine(shards, cap, deadline);
        e.reserve(3 * load.len());
        let t_end = feed(&mut e, 0, &load);
        // Settle all pending deadlines so the replay starts clean.
        e.advance(t_end + deadline + 1);
        let warm = e.pool_stats();
        let t_end2 = feed(&mut e, t_end + deadline + 1, &load);
        e.advance(t_end2 + deadline + 1);
        let delta = e.pool_stats().since(&warm);
        prop_assert_eq!(delta.allocations(), 0, "replay allocated: {:?}", delta);
    }
}

/// The FCFS-fairness regression: shard 1 trickles one request every
/// 2 ms while shard 0 is hammered far beyond its service capacity. The
/// trickle shard's latency must stay exactly deadline + step(1) — shards
/// own disjoint replicas and the `(ready, shard)` order never lets a
/// saturated neighbor's backlog delay another shard's dispatch.
#[test]
fn saturated_shard_cannot_starve_a_trickle_shard() {
    let deadline = 300u64;
    let mut e = engine(2, 8, deadline);
    e.reserve(6000);
    let mut trickle_ids = Vec::new();
    for t in 0..10_000u64 {
        // step(8) = 120 µs for 8 requests → capacity ~15 req/ms; offered
        // load on shard 0 is 1 req/µs, 60× capacity.
        let _ = e.submit(t, 0, &mut |px| px.fill(0.0));
        if t % 2000 == 0 {
            trickle_ids.push(e.submit(t, 1, &mut |px| px.fill(1.0)));
        }
    }
    e.drain();
    let step1 = e.model().step_us(1);
    let mut seen = 0;
    let mut max_shard0 = 0.0f64;
    for c in e.completions() {
        if c.shard == 1 {
            assert!(trickle_ids.contains(&c.id));
            assert!(
                (c.latency_us() - (deadline as f64 + step1)).abs() < 1e-9,
                "trickle request {} delayed to {} µs by the saturated shard",
                c.id,
                c.latency_us()
            );
            seen += 1;
        } else {
            max_shard0 = max_shard0.max(c.latency_us());
        }
    }
    assert_eq!(seen, trickle_ids.len(), "trickle requests lost");
    // Sanity: shard 0 really was saturated — its tail dwarfs the bound.
    assert!(
        max_shard0 > 10.0 * (deadline as f64 + step1),
        "shard 0 was not overloaded (max {max_shard0} µs); test is vacuous"
    );
}
