//! Networks: layer stacks over one packed parameter arena.

use crate::activations::{Relu, Sigmoid, Tanh};
use crate::conv::Conv2d;
use crate::dense::Dense;
use crate::dropout::Dropout;
use crate::flatten::Flatten;
use crate::layer::Layer;
use crate::loss::SoftmaxCrossEntropy;
use crate::lrn::LocalResponseNorm;
use crate::pool::{AvgPool2d, MaxPool2d};
use easgd_tensor::{
    Conv2dGeometry, InferScratch, ParamArena, Rng, ScratchPolicy, ScratchStats, Tensor,
    TrainScratch,
};

/// Statistics of one training step.
#[derive(Clone, Copy, Debug)]
pub struct StepStats {
    /// Mean cross-entropy loss of the batch.
    pub loss: f32,
    /// Samples predicted correctly.
    pub correct: usize,
    /// Batch size.
    pub batch: usize,
}

impl StepStats {
    /// Batch accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f32 {
        self.correct as f32 / self.batch as f32
    }
}

/// Fluent builder that tracks the per-sample shape through the stack.
///
/// ```
/// use easgd_nn::NetworkBuilder;
/// let net = NetworkBuilder::new([1, 8, 8])
///     .conv2d(4, 3, 1, 1)
///     .relu()
///     .maxpool(2, 2)
///     .flatten()
///     .dense(10)
///     .build(42);
/// assert_eq!(net.num_classes(), 10);
/// ```
pub struct NetworkBuilder {
    input_shape: Vec<usize>,
    cur: Vec<usize>,
    layers: Vec<Box<dyn Layer>>,
    n: usize,
}

impl NetworkBuilder {
    /// Starts a network taking per-sample inputs of `input_shape`
    /// (`[channels, h, w]` for image models, `[features]` for MLPs).
    pub fn new(input_shape: impl Into<Vec<usize>>) -> Self {
        let input_shape = input_shape.into();
        assert!(!input_shape.is_empty(), "input shape cannot be empty");
        Self {
            cur: input_shape.clone(),
            input_shape,
            layers: Vec::new(),
            n: 0,
        }
    }

    fn next_name(&mut self, kind: &str) -> String {
        self.n += 1;
        format!("{kind}{}", self.n)
    }

    fn chw(&self) -> (usize, usize, usize) {
        assert_eq!(
            self.cur.len(),
            3,
            "layer expects a [C,H,W] input, current shape is {:?}",
            self.cur
        );
        (self.cur[0], self.cur[1], self.cur[2])
    }

    /// Appends a convolution with `out_channels` filters of size
    /// `k × k`, the given stride and zero padding.
    pub fn conv2d(mut self, out_channels: usize, k: usize, stride: usize, pad: usize) -> Self {
        let (c, h, w) = self.chw();
        let geom = Conv2dGeometry {
            in_channels: c,
            in_h: h,
            in_w: w,
            k_h: k,
            k_w: k,
            stride,
            pad,
        };
        let name = self.next_name("conv");
        let layer = Conv2d::new(name, geom, out_channels);
        self.cur = layer.out_shape();
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a ReLU.
    pub fn relu(mut self) -> Self {
        let name = self.next_name("relu");
        let layer = Relu::new(name, self.cur.clone());
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a Tanh.
    pub fn tanh(mut self) -> Self {
        let name = self.next_name("tanh");
        let layer = Tanh::new(name, self.cur.clone());
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a Sigmoid.
    pub fn sigmoid(mut self) -> Self {
        let name = self.next_name("sigmoid");
        let layer = Sigmoid::new(name, self.cur.clone());
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends max pooling.
    pub fn maxpool(mut self, size: usize, stride: usize) -> Self {
        let (c, h, w) = self.chw();
        let name = self.next_name("pool");
        let layer = MaxPool2d::new(name, c, h, w, size, stride);
        self.cur = layer.out_shape();
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends average pooling.
    pub fn avgpool(mut self, size: usize, stride: usize) -> Self {
        let (c, h, w) = self.chw();
        let name = self.next_name("pool");
        let layer = AvgPool2d::new(name, c, h, w, size, stride);
        self.cur = layer.out_shape();
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends batch normalization over the current shape (per-channel
    /// for `[C,H,W]` maps, per-feature for flat activations).
    pub fn batchnorm(mut self) -> Self {
        let (channels, plane) = match self.cur.len() {
            1 => (self.cur[0], 1),
            3 => (self.cur[0], self.cur[1] * self.cur[2]),
            _ => panic!(
                "batchnorm expects [C,H,W] or [features], got {:?}",
                self.cur
            ),
        };
        let name = self.next_name("bn");
        let layer = crate::batchnorm::BatchNorm::new(name, channels, plane);
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a GoogLeNet inception module.
    pub fn inception(mut self, config: crate::inception::InceptionConfig) -> Self {
        let (c, h, w) = self.chw();
        let name = self.next_name("inception");
        let layer = crate::inception::Inception::new(name, c, h, w, config);
        self.cur = layer.out_shape();
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends local response normalization with AlexNet defaults.
    pub fn lrn(mut self) -> Self {
        let (c, h, w) = self.chw();
        let name = self.next_name("lrn");
        let layer = LocalResponseNorm::new(name, c, h, w);
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a flatten stage.
    pub fn flatten(mut self) -> Self {
        let name = self.next_name("flatten");
        let layer = Flatten::new(name, self.cur.clone());
        self.cur = layer.out_shape();
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a fully-connected layer to `out_features`.
    ///
    /// # Panics
    /// Panics if the current shape is not flat (call
    /// [`flatten`](Self::flatten) after convolutional stages first).
    pub fn dense(mut self, out_features: usize) -> Self {
        assert_eq!(
            self.cur.len(),
            1,
            "dense expects a flat input; call .flatten() first (shape {:?})",
            self.cur
        );
        let name = self.next_name("fc");
        let layer = Dense::new(name, self.cur[0], out_features);
        self.cur = layer.out_shape();
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends dropout with drop probability `p`.
    pub fn dropout(mut self, p: f32) -> Self {
        let name = self.next_name("drop");
        let layer = Dropout::new(name, self.cur.clone(), p, 0xD0_u64 + self.n as u64);
        self.layers.push(Box::new(layer));
        self
    }

    /// Freezes the stack: allocates the packed arena, initializes weights
    /// from `seed`, binds layers, and returns the runnable network.
    pub fn build(self, seed: u64) -> Network {
        let mut rng = Rng::new(seed);
        let mut arena_builder = ParamArena::builder();
        let mut bindings = Vec::new();
        let mut specs_all = Vec::new();
        for layer in &self.layers {
            let specs = layer.param_specs();
            let mut segs = Vec::new();
            for spec in &specs {
                segs.push(arena_builder.push(spec.name.clone(), spec.len));
            }
            bindings.push(segs);
            specs_all.push(specs);
        }
        let mut params = arena_builder.build();
        let mut layers = self.layers;
        for ((layer, segs), specs) in layers.iter_mut().zip(&bindings).zip(&specs_all) {
            for (i, spec) in specs.iter().enumerate() {
                spec.init.fill(params.segment_mut(segs[i]), &mut rng);
            }
            layer.bind(segs);
        }
        let grads = ParamArena::like(&params);
        let batch_dims = std::iter::once(0)
            .chain(self.input_shape.iter().copied())
            .collect();
        Network {
            layers,
            params,
            grads,
            loss: SoftmaxCrossEntropy,
            input_shape: self.input_shape,
            num_classes: self.cur.iter().product(),
            scratch: TrainScratch::default(),
            batch_dims,
        }
    }
}

/// A runnable feed-forward network.
///
/// All parameters live in one packed [`ParamArena`] (the §5.2 layout);
/// gradients live in a second arena of identical layout. Every worker in a
/// distributed run clones the network (data parallelism replicates the
/// model, §2.3) — clones share nothing.
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    params: ParamArena,
    grads: ParamArena,
    loss: SoftmaxCrossEntropy,
    input_shape: Vec<usize>,
    num_classes: usize,
    /// Activation arena of the pooled training step (DESIGN.md §11): slot
    /// tensors for the ping/pong layer chain, the batch input copy, and
    /// the softmax probabilities, plus the allocation counters.
    scratch: TrainScratch,
    /// `[batch, …input_shape]` dims with the batch slot patched per step —
    /// persistent so the hot path never rebuilds the list.
    batch_dims: Vec<usize>,
}

impl Clone for Network {
    fn clone(&self) -> Self {
        Self {
            layers: self.layers.clone(),
            params: self.params.clone(),
            grads: self.grads.clone(),
            loss: SoftmaxCrossEntropy,
            input_shape: self.input_shape.clone(),
            num_classes: self.num_classes,
            // Replicas warm their own buffers; only the policy carries over.
            scratch: TrainScratch::new(self.scratch.policy()),
            batch_dims: self.batch_dims.clone(),
        }
    }
}

impl Network {
    /// Per-sample input shape.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Total number of parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Model size in bytes — the packed message size of §5.2.
    pub fn size_bytes(&self) -> usize {
        self.params.size_bytes()
    }

    /// The packed parameter arena.
    pub fn params(&self) -> &ParamArena {
        &self.params
    }

    /// Mutable packed parameter arena (optimizers write here).
    pub fn params_mut(&mut self) -> &mut ParamArena {
        &mut self.params
    }

    /// The gradient arena from the last [`forward_backward`](Self::forward_backward).
    pub fn grads(&self) -> &ParamArena {
        &self.grads
    }

    /// Mutable gradient arena.
    pub fn grads_mut(&mut self) -> &mut ParamArena {
        &mut self.grads
    }

    /// Per-parameter-segment `(name, len)` pairs, in arena order — the
    /// per-layer message schedule of the *unpacked* layout (Figure 10).
    pub fn segment_sizes(&self) -> Vec<(String, usize)> {
        self.params
            .segments()
            .iter()
            .map(|s| (s.name.clone(), s.len))
            .collect()
    }

    /// Forward propagation on a batch `[B, …input_shape]`; returns logits
    /// `[B, classes]`.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        // xtask: allow(step-alloc) — inference-only entry point; training
        // steps go through the pooled `forward_backward`.
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&self.params, &cur, train);
        }
        cur
    }

    /// One full training evaluation: forward, loss, backward. Gradients
    /// are zeroed first, then accumulated into [`grads`](Self::grads).
    ///
    /// This is the pooled path: activations and gradients ping-pong
    /// between two slot tensors checked out of the step scratch, every
    /// layer sizes its buffers through the counted `ensure_*` helpers, and
    /// after one warm-up step the steady state performs zero heap
    /// allocations (DESIGN.md §11) while remaining bit-identical to the
    /// allocating shims.
    pub fn forward_backward(&mut self, x: &Tensor, labels: &[usize]) -> StepStats {
        assert_eq!(
            self.grads.len(),
            self.params.len(),
            "forward_backward on a gradient-stripped inference replica \
             (see strip_gradients)"
        );
        let mut ping = self.scratch.take_ping();
        let mut pong = self.scratch.take_pong();
        let mut probs = self.scratch.take_probs();

        let mut first = true;
        for layer in &mut self.layers {
            if first {
                layer.forward_into(&self.params, x, true, &mut pong, &mut self.scratch);
                first = false;
            } else {
                std::mem::swap(&mut ping, &mut pong);
                layer.forward_into(&self.params, &ping, true, &mut pong, &mut self.scratch);
            }
        }
        if first {
            // Layer-less network: the logits are the input itself.
            self.scratch.shape_tensor(&mut pong, x.shape().dims());
            pong.as_mut_slice().copy_from_slice(x.as_slice());
        }
        let (loss, correct) = self
            .loss
            .forward_into(&pong, labels, &mut probs, &mut self.scratch);
        self.loss
            .backward_into(&probs, labels, &mut ping, &mut self.scratch);

        self.grads.zero();
        for layer in self.layers.iter_mut().rev() {
            layer.backward_into(
                &self.params,
                &mut self.grads,
                &ping,
                &mut pong,
                &mut self.scratch,
            );
            std::mem::swap(&mut ping, &mut pong);
        }

        self.scratch.put_ping(ping);
        self.scratch.put_pong(pong);
        self.scratch.put_probs(probs);
        StepStats {
            loss,
            correct,
            batch: labels.len(),
        }
    }

    /// [`forward_backward`](Self::forward_backward) over a flat pixel
    /// buffer (the decoded form of a wire batch): shapes the pooled batch
    /// tensor to `[batch, …input_shape]`, copies the pixels in, and steps
    /// — no per-call tensor allocation once warm.
    ///
    /// # Panics
    /// Panics if `pixels.len()` disagrees with `batch` samples.
    pub fn forward_backward_from_slice(
        &mut self,
        batch: usize,
        pixels: &[f32],
        labels: &[usize],
    ) -> StepStats {
        let per: usize = self.input_shape.iter().product();
        assert_eq!(
            pixels.len(),
            batch * per,
            "flat batch length mismatch: {} pixels for {batch} samples of {per}",
            pixels.len()
        );
        let mut x = self.scratch.take_batch();
        self.batch_dims[0] = batch;
        self.scratch.shape_tensor(&mut x, &self.batch_dims);
        x.as_mut_slice().copy_from_slice(pixels);
        let stats = self.forward_backward(&x, labels);
        self.scratch.put_batch(x);
        stats
    }

    /// Forward-only inference on a batch `[B, …input_shape]`, writing
    /// logits `[B, classes]` into `logits` — the pooled counterpart of
    /// the allocating [`forward`](Self::forward) shim, in eval mode
    /// (`train = false`: dropout is the identity and consumes no RNG
    /// draws, batch normalization uses running statistics).
    ///
    /// All transient buffers are sized through the caller's
    /// [`InferScratch`], not the network's training scratch, so an
    /// inference session carries its replica state (network clone +
    /// scratch) and reaches a zero-allocations-per-request steady state
    /// after one warm-up batch per distinct batch size. Outputs are
    /// bit-identical to `forward(x, false)`.
    pub fn infer_into(&mut self, x: &Tensor, logits: &mut Tensor, scratch: &mut InferScratch) {
        let s = scratch.train_scratch();
        let mut ping = s.take_ping();
        let mut pong = s.take_pong();
        let mut first = true;
        for layer in &mut self.layers {
            if first {
                layer.forward_into(&self.params, x, false, &mut pong, s);
                first = false;
            } else {
                std::mem::swap(&mut ping, &mut pong);
                layer.forward_into(&self.params, &ping, false, &mut pong, s);
            }
        }
        if first {
            // Layer-less network: the logits are the input itself.
            s.shape_tensor(&mut pong, x.shape().dims());
            pong.as_mut_slice().copy_from_slice(x.as_slice());
        }
        s.shape_tensor(logits, pong.shape().dims());
        logits.as_mut_slice().copy_from_slice(pong.as_slice());
        s.put_ping(ping);
        s.put_pong(pong);
    }

    /// [`infer_into`](Self::infer_into) over a flat pixel buffer (the
    /// decoded form of a serving request batch): shapes the scratch's
    /// batch tensor to `[batch, …input_shape]`, copies the pixels in,
    /// and runs the forward-only path — no per-call tensor allocation
    /// once warm.
    ///
    /// # Panics
    /// Panics if `pixels.len()` disagrees with `batch` samples.
    pub fn infer_from_slice(
        &mut self,
        batch: usize,
        pixels: &[f32],
        logits: &mut Tensor,
        scratch: &mut InferScratch,
    ) {
        let per: usize = self.input_shape.iter().product();
        assert_eq!(
            pixels.len(),
            batch * per,
            "flat batch length mismatch: {} pixels for {batch} samples of {per}",
            pixels.len()
        );
        let mut x = scratch.train_scratch().take_batch();
        self.batch_dims[0] = batch;
        scratch
            .train_scratch()
            .shape_tensor(&mut x, &self.batch_dims);
        x.as_mut_slice().copy_from_slice(pixels);
        self.infer_into(&x, logits, scratch);
        scratch.train_scratch().put_batch(x);
    }

    /// Drops the gradient arena (replacing it with an empty one) so a
    /// dedicated inference replica carries zero backward/gradient
    /// storage — halving replica memory next to the packed parameters.
    /// A stripped replica must not train: `forward_backward` panics.
    pub fn strip_gradients(&mut self) {
        self.grads = ParamArena::flat(0);
    }

    /// Allocation counters of the pooled step scratch. A warmed-up
    /// steady-state step leaves [`ScratchStats::allocations`] unchanged;
    /// the train bench and the regression tests assert exactly that.
    pub fn scratch_stats(&self) -> ScratchStats {
        self.scratch.stats()
    }

    /// Replaces the step scratch with a fresh one running `policy`
    /// (buffers and counters reset). [`ScratchPolicy::Churn`] reproduces
    /// the seed's allocate-every-step behaviour for baseline timing.
    pub fn set_scratch_policy(&mut self, policy: ScratchPolicy) {
        self.scratch = TrainScratch::new(policy);
    }

    /// Classification accuracy over a labelled set, evaluated in batches
    /// of `batch` (inference mode: dropout off).
    ///
    /// # Panics
    /// Panics if `images` and `labels` disagree on the sample count.
    pub fn evaluate(&mut self, images: &Tensor, labels: &[usize], batch: usize) -> f32 {
        let n = labels.len();
        assert!(n > 0, "empty evaluation set");
        let per: usize = self.input_shape.iter().product();
        assert_eq!(images.len(), n * per, "evaluate: images/labels mismatch");
        let mut correct = 0usize;
        let mut start = 0;
        while start < n {
            let end = (start + batch).min(n);
            let bsz = end - start;
            let mut shape = vec![bsz];
            shape.extend_from_slice(&self.input_shape);
            let x = Tensor::from_vec(shape, images.as_slice()[start * per..end * per].to_vec());
            let logits = self.forward(&x, false);
            for (s, &label) in labels[start..end].iter().enumerate() {
                let row = &logits.as_slice()[s * self.num_classes..(s + 1) * self.num_classes];
                if easgd_tensor::ops::argmax(row) == Some(label) {
                    correct += 1;
                }
            }
            start = end;
        }
        correct as f32 / n as f32
    }

    /// Overwrites all parameters from a flat slice.
    ///
    /// # Panics
    /// Panics if `src.len() != num_params()`.
    pub fn set_params(&mut self, src: &[f32]) {
        assert_eq!(src.len(), self.params.len(), "parameter length mismatch");
        self.params.as_mut_slice().copy_from_slice(src);
    }

    /// Layer count (diagnostics).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net() -> Network {
        NetworkBuilder::new([1, 6, 6])
            .conv2d(2, 3, 1, 1)
            .relu()
            .maxpool(2, 2)
            .flatten()
            .dense(10)
            .build(7)
    }

    #[test]
    fn builder_tracks_shapes() {
        let net = tiny_net();
        assert_eq!(net.num_classes(), 10);
        assert_eq!(net.input_shape(), &[1, 6, 6]);
        // conv(1→2, 3x3 pad 1): 2*9+2 = 20; fc(2*3*3=18→10): 190. Total 210.
        assert_eq!(net.num_params(), 20 + 190);
    }

    #[test]
    fn forward_shape_is_batch_by_classes() {
        let mut net = tiny_net();
        let x = Tensor::zeros([5, 1, 6, 6]);
        let y = net.forward(&x, false);
        assert_eq!(y.shape().dims(), &[5, 10]);
    }

    #[test]
    fn forward_backward_fills_grads() {
        let mut net = tiny_net();
        let mut rng = Rng::new(1);
        let mut x = Tensor::zeros([4, 1, 6, 6]);
        rng.fill_normal(x.as_mut_slice(), 0.0, 1.0);
        let stats = net.forward_backward(&x, &[0, 1, 2, 3]);
        assert!(stats.loss > 0.0);
        assert_eq!(stats.batch, 4);
        let g = net.grads().as_slice();
        assert!(g.iter().any(|&v| v != 0.0), "gradients all zero");
    }

    #[test]
    fn sgd_loop_reduces_loss() {
        // A single linearly-separable blob task must be learnable.
        let mut net = NetworkBuilder::new([4]).dense(8).relu().dense(2).build(3);
        let mut rng = Rng::new(9);
        let n = 64;
        let mut xs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let center = if class == 0 { -1.0 } else { 1.0 };
            for _ in 0..4 {
                xs.push(center + 0.3 * rng.normal());
            }
            labels.push(class);
        }
        let x = Tensor::from_vec([n, 4], xs);
        let first = net.forward_backward(&x, &labels).loss;
        for _ in 0..60 {
            let stats = net.forward_backward(&x, &labels);
            let g = net.grads.as_slice().to_vec();
            easgd_tensor::ops::sgd_update(0.5, net.params_mut().as_mut_slice(), &g);
            let _ = stats;
        }
        let last = net.forward_backward(&x, &labels);
        assert!(
            last.loss < first * 0.3,
            "loss did not drop: {first} -> {}",
            last.loss
        );
        assert!(last.accuracy() > 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = tiny_net();
        let mut b = tiny_net();
        assert_eq!(a.params().as_slice(), b.params().as_slice());
        let x = Tensor::full([2, 1, 6, 6], 0.5);
        let ya = a.forward(&x, false);
        let yb = b.forward(&x, false);
        assert_eq!(ya.as_slice(), yb.as_slice());
    }

    #[test]
    fn clone_is_independent_replica() {
        let mut a = tiny_net();
        let mut b = a.clone();
        b.params_mut().as_mut_slice()[0] += 1.0;
        assert_ne!(a.params().as_slice()[0], b.params().as_slice()[0]);
        // Both still runnable.
        let x = Tensor::zeros([1, 1, 6, 6]);
        let _ = a.forward(&x, false);
        let _ = b.forward(&x, false);
    }

    #[test]
    fn evaluate_counts_correct_fraction() {
        let mut net = tiny_net();
        let mut rng = Rng::new(2);
        let mut images = Tensor::zeros([10, 1, 6, 6]);
        rng.fill_normal(images.as_mut_slice(), 0.0, 1.0);
        let labels = vec![0usize; 10];
        let acc = net.evaluate(&images, &labels, 4);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn segment_sizes_enumerate_layers() {
        let net = tiny_net();
        let sizes = net.segment_sizes();
        assert_eq!(sizes.len(), 4); // conv w+b, fc w+b
        assert_eq!(sizes[0].0, "conv1.weight");
        let total: usize = sizes.iter().map(|(_, l)| l).sum();
        assert_eq!(total, net.num_params());
    }

    #[test]
    #[should_panic(expected = "flatten")]
    fn dense_requires_flat_input() {
        let _ = NetworkBuilder::new([1, 4, 4]).dense(10);
    }

    #[test]
    fn infer_into_matches_allocating_forward_bitwise() {
        let mut net = tiny_net();
        let mut rng = Rng::new(11);
        let mut x = Tensor::zeros([3, 1, 6, 6]);
        rng.fill_normal(x.as_mut_slice(), 0.0, 1.0);
        let reference = net.forward(&x, false);
        let mut scratch = InferScratch::new();
        let mut logits = Tensor::default();
        net.infer_into(&x, &mut logits, &mut scratch);
        assert_eq!(logits.shape().dims(), reference.shape().dims());
        for (a, b) in logits.as_slice().iter().zip(reference.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn infer_from_slice_is_zero_alloc_once_warm() {
        let mut net = tiny_net();
        let mut rng = Rng::new(12);
        let per: usize = net.input_shape().iter().product();
        let mut pixels = vec![0.0f32; 4 * per];
        rng.fill_normal(&mut pixels, 0.0, 1.0);
        let mut scratch = InferScratch::new();
        let mut logits = Tensor::default();
        // Warm-up at both batch sizes the window replays.
        net.infer_from_slice(4, &pixels, &mut logits, &mut scratch);
        net.infer_from_slice(1, &pixels[..per], &mut logits, &mut scratch);
        let warm = scratch.stats();
        for _ in 0..3 {
            net.infer_from_slice(4, &pixels, &mut logits, &mut scratch);
            net.infer_from_slice(1, &pixels[..per], &mut logits, &mut scratch);
        }
        let delta = scratch.stats().since(&warm);
        assert_eq!(delta.allocations(), 0, "steady-state inference allocated");
        assert!(delta.reused > 0, "counters saw no requests");
    }

    #[test]
    fn stripped_replica_still_infers() {
        let mut net = tiny_net();
        let x = Tensor::full([2, 1, 6, 6], 0.25);
        let reference = net.forward(&x, false);
        net.strip_gradients();
        let mut scratch = InferScratch::new();
        let mut logits = Tensor::default();
        net.infer_into(&x, &mut logits, &mut scratch);
        assert_eq!(logits.as_slice(), reference.as_slice());
    }

    #[test]
    #[should_panic(expected = "gradient-stripped")]
    fn stripped_replica_cannot_train() {
        let mut net = tiny_net();
        net.strip_gradients();
        let x = Tensor::zeros([1, 1, 6, 6]);
        let _ = net.forward_backward(&x, &[0]);
    }
}
