//! Microbench: the GEMM kernel behind every worker's forward/backward
//! pass — serial vs Rayon-parallel paths and the NN-relevant transpose
//! variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use easgd_tensor::{gemm, Rng, Transpose};

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect()
}

fn bench_square(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_square");
    for &n in &[32usize, 64, 128, 256] {
        let a = rand_vec(n * n, 1);
        let b = rand_vec(n * n, 2);
        let mut out = vec![0.0f32; n * n];
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, &n| {
            bencher.iter(|| {
                gemm(
                    Transpose::No,
                    Transpose::No,
                    n,
                    n,
                    n,
                    1.0,
                    &a,
                    &b,
                    0.0,
                    &mut out,
                )
            });
        });
    }
    group.finish();
}

fn bench_transpose_variants(c: &mut Criterion) {
    // Dense-layer shapes: forward (NT), weight gradient (TN).
    let (m, n, k) = (64usize, 128usize, 256usize);
    let mut group = c.benchmark_group("gemm_nn_shapes");
    let a = rand_vec(m * k, 3);
    let bt = rand_vec(n * k, 4);
    let b = rand_vec(k * n, 5);
    let at = rand_vec(k * m, 6);
    let mut out = vec![0.0f32; m * n];
    group.bench_function("forward_NT", |bencher| {
        bencher.iter(|| {
            gemm(
                Transpose::No,
                Transpose::Yes,
                m,
                n,
                k,
                1.0,
                &a,
                &bt,
                0.0,
                &mut out,
            )
        });
    });
    group.bench_function("wgrad_TN", |bencher| {
        bencher.iter(|| {
            gemm(
                Transpose::Yes,
                Transpose::No,
                m,
                n,
                k,
                1.0,
                &at,
                &b,
                0.0,
                &mut out,
            )
        });
    });
    group.bench_function("xgrad_NN", |bencher| {
        bencher.iter(|| {
            gemm(
                Transpose::No,
                Transpose::No,
                m,
                n,
                k,
                1.0,
                &a,
                &b,
                0.0,
                &mut out,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_square, bench_transpose_variants);
criterion_main!(benches);
