//! End-to-end gradient verification: the full network + softmax
//! cross-entropy loss against central finite differences — certifying
//! that every gradient the distributed algorithms average is the true
//! gradient of the training loss.

use knl_easgd::nn::inception::InceptionConfig;
use knl_easgd::prelude::*;

/// FD-checks `∂L/∂θ` of the network's mean cross-entropy at a sample of
/// parameter coordinates.
fn check_network(mut net: Network, batch: usize, probes: usize, tol: f64, seed: u64) {
    let mut rng = Rng::new(seed);
    let mut shape = vec![batch];
    shape.extend_from_slice(net.input_shape());
    let mut x = Tensor::zeros(shape);
    rng.fill_normal(x.as_mut_slice(), 0.0, 1.0);
    let labels: Vec<usize> = (0..batch).map(|i| i % net.num_classes()).collect();

    let _ = net.forward_backward(&x, &labels);
    let analytic = net.grads().as_slice().to_vec();

    let eps = 1e-3f32;
    for _ in 0..probes {
        let idx = rng.below(net.num_params());
        let orig = net.params().as_slice()[idx];

        net.params_mut().as_mut_slice()[idx] = orig + eps;
        let lp = net.forward_backward(&x, &labels).loss as f64;
        net.params_mut().as_mut_slice()[idx] = orig - eps;
        let lm = net.forward_backward(&x, &labels).loss as f64;
        net.params_mut().as_mut_slice()[idx] = orig;

        let numeric = (lp - lm) / (2.0 * eps as f64);
        let a = analytic[idx] as f64;
        let scale = a.abs().max(numeric.abs()).max(1e-2);
        assert!(
            (a - numeric).abs() <= tol * scale,
            "param[{idx}]: analytic {a:.6} vs numeric {numeric:.6}"
        );
    }
}

#[test]
fn lenet_tiny_end_to_end_gradient() {
    check_network(lenet_tiny(1), 4, 30, 2e-2, 2);
}

#[test]
fn mlp_end_to_end_gradient() {
    check_network(mlp(20, &[16, 12], 5, 3), 6, 30, 2e-2, 4);
}

#[test]
fn alexnet_tiny_end_to_end_gradient() {
    check_network(alexnet_cifar_tiny(5), 2, 20, 2e-2, 6);
}

#[test]
fn inception_network_end_to_end_gradient() {
    let net = NetworkBuilder::new([2, 8, 8])
        .conv2d(4, 3, 1, 1)
        .relu()
        .inception(InceptionConfig {
            c1: 2,
            c3_reduce: 2,
            c3: 3,
            c5_reduce: 1,
            c5: 2,
            pool_proj: 1,
        })
        .relu()
        .flatten()
        .dense(6)
        .build(7);
    check_network(net, 3, 25, 5e-2, 8);
}

#[test]
fn deep_stack_with_every_layer_kind_has_exact_gradients() {
    // Conv, LRN, pooling (max + avg), tanh, sigmoid, dense — one stack.
    let net = NetworkBuilder::new([1, 10, 10])
        .conv2d(4, 3, 1, 1)
        .lrn()
        .tanh()
        .maxpool(2, 2)
        .conv2d(6, 3, 1, 1)
        .sigmoid()
        .avgpool(5, 5)
        .flatten()
        .dense(8)
        .relu()
        .dense(4)
        .build(9);
    check_network(net, 3, 30, 5e-2, 10);
}
