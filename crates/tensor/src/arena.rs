//! Packed parameter arena: the §5.2 “single-layer communication” substrate.
//!
//! Deep-learning frameworks of the paper's era allocated each layer's
//! weights separately and sent one message per layer. §5.2 shows that
//! packing all layers into one contiguous allocation wins twice: the α
//! (latency) term is paid once instead of once per layer, and contiguous
//! memory access has a higher cache-hit rate.
//!
//! [`ParamArena`] is that contiguous allocation: a single `Vec<f32>` with a
//! registry of named [`Segment`]s. A whole model's parameters — and,
//! symmetrically, its gradients, velocities, and center weights — live in
//! arenas of identical layout, so elastic updates and collectives operate
//! on one flat slice.

use std::fmt;

/// A named sub-range of a [`ParamArena`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Human-readable name, e.g. `"conv1.weight"`.
    pub name: String,
    /// Offset in elements from the start of the arena.
    pub offset: usize,
    /// Length in elements.
    pub len: usize,
}

impl Segment {
    /// The element range of this segment.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.offset..self.offset + self.len
    }
}

/// Builder that lays out segments back-to-back, then freezes into an arena.
#[derive(Default)]
pub struct ArenaBuilder {
    segments: Vec<Segment>,
    total: usize,
}

impl ArenaBuilder {
    /// A builder with no segments.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a segment of `len` elements and returns its index.
    pub fn push(&mut self, name: impl Into<String>, len: usize) -> usize {
        let idx = self.segments.len();
        self.segments.push(Segment {
            name: name.into(),
            offset: self.total,
            len,
        });
        self.total += len;
        idx
    }

    /// Freezes the layout into a zero-initialized arena.
    pub fn build(self) -> ParamArena {
        ParamArena {
            data: vec![0.0; self.total],
            segments: self.segments,
        }
    }
}

/// A contiguous, named-segment parameter buffer.
#[derive(Clone, PartialEq)]
pub struct ParamArena {
    data: Vec<f32>,
    segments: Vec<Segment>,
}

impl ParamArena {
    /// Starts building an arena.
    pub fn builder() -> ArenaBuilder {
        ArenaBuilder::new()
    }

    /// A segment-less arena over `len` raw elements (useful when only the
    /// flat view matters, e.g. a gradient accumulation buffer).
    pub fn flat(len: usize) -> Self {
        Self {
            data: vec![0.0; len],
            segments: vec![Segment {
                name: "flat".to_string(),
                offset: 0,
                len,
            }],
        }
    }

    /// An arena with the same segment layout as `other`, zero-filled.
    ///
    /// Gradients, momenta and center weights are all laid out like the
    /// weights they shadow, which is what lets Equations (1)–(6) run as
    /// flat-slice kernels.
    pub fn like(other: &ParamArena) -> Self {
        Self {
            data: vec![0.0; other.data.len()],
            segments: other.segments.clone(),
        }
    }

    /// Total elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the arena holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes (the message size of the packed layout).
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// The segment registry.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The whole arena as one flat slice — the packed message of §5.2.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Read-only view of segment `idx`.
    pub fn segment(&self, idx: usize) -> &[f32] {
        let r = self.segments[idx].range();
        &self.data[r]
    }

    /// Mutable view of segment `idx`.
    pub fn segment_mut(&mut self, idx: usize) -> &mut [f32] {
        let r = self.segments[idx].range();
        &mut self.data[r]
    }

    /// Looks a segment up by name.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.segments.iter().position(|s| s.name == name)
    }

    /// Splits the arena into disjoint mutable segment views, in registry
    /// order. This is how a layer gets simultaneous access to its weight
    /// and bias without aliasing the rest of the model.
    pub fn split_mut(&mut self) -> Vec<&mut [f32]> {
        let mut out = Vec::with_capacity(self.segments.len());
        let mut rest: &mut [f32] = &mut self.data;
        let mut consumed = 0;
        for seg in &self.segments {
            assert!(
                seg.offset >= consumed,
                "segments must be non-overlapping and ordered"
            );
            let skip = seg.offset - consumed;
            let (_, tail) = rest.split_at_mut(skip);
            let (head, tail) = tail.split_at_mut(seg.len);
            out.push(head);
            rest = tail;
            consumed = seg.offset + seg.len;
        }
        out
    }

    /// Overwrites this arena's contents from another of identical length.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn copy_from(&mut self, other: &ParamArena) {
        assert_eq!(self.len(), other.len(), "arena length mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Zeroes all elements.
    pub fn zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }
}

impl fmt::Debug for ParamArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ParamArena({} segments, {} elements, {} bytes)",
            self.segments.len(),
            self.len(),
            self.size_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ParamArena {
        let mut b = ParamArena::builder();
        b.push("conv1.weight", 6);
        b.push("conv1.bias", 2);
        b.push("fc.weight", 4);
        b.build()
    }

    #[test]
    fn layout_is_back_to_back() {
        let a = sample();
        assert_eq!(a.len(), 12);
        assert_eq!(a.segments()[0].offset, 0);
        assert_eq!(a.segments()[1].offset, 6);
        assert_eq!(a.segments()[2].offset, 8);
        assert_eq!(a.size_bytes(), 48);
    }

    #[test]
    fn segment_views_are_disjoint_windows() {
        let mut a = sample();
        a.segment_mut(1).fill(5.0);
        assert!(a.segment(0).iter().all(|&x| x == 0.0));
        assert!(a.segment(1).iter().all(|&x| x == 5.0));
        assert!(a.segment(2).iter().all(|&x| x == 0.0));
        assert_eq!(a.as_slice()[6], 5.0);
    }

    #[test]
    fn find_by_name() {
        let a = sample();
        assert_eq!(a.find("fc.weight"), Some(2));
        assert_eq!(a.find("missing"), None);
    }

    #[test]
    fn split_mut_returns_all_segments() {
        let mut a = sample();
        {
            let mut views = a.split_mut();
            assert_eq!(views.len(), 3);
            assert_eq!(views[0].len(), 6);
            views[2].fill(1.0);
        }
        assert!(a.segment(2).iter().all(|&x| x == 1.0));
    }

    #[test]
    fn like_copies_layout_not_data() {
        let mut a = sample();
        a.as_mut_slice().fill(3.0);
        let b = ParamArena::like(&a);
        assert_eq!(b.len(), a.len());
        assert_eq!(b.segments(), a.segments());
        assert!(b.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn copy_from_transfers_contents() {
        let mut a = sample();
        a.as_mut_slice().fill(2.0);
        let mut b = ParamArena::like(&a);
        b.copy_from(&a);
        assert_eq!(b.as_slice(), a.as_slice());
    }

    #[test]
    fn flat_arena_single_segment() {
        let a = ParamArena::flat(10);
        assert_eq!(a.segments().len(), 1);
        assert_eq!(a.segments()[0].len, 10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn copy_from_rejects_mismatch() {
        let mut a = ParamArena::flat(3);
        a.copy_from(&ParamArena::flat(4));
    }
}
