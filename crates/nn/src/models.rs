//! The runnable model zoo (§4.2).
//!
//! The paper trains LeNet on MNIST, AlexNet on CIFAR, and GoogLeNet/VGG on
//! ImageNet. The first two are runnable here at paper scale; `*_tiny`
//! variants preserve the architecture *shape* (conv → pool → conv → pool →
//! dense) at a size that trains to high accuracy in seconds, which the
//! Figure 6/8 experiments need because each figure point is an independent
//! end-to-end run. GoogLeNet/VGG are represented by cost specifications in
//! [`crate::spec`] (they are only ever *timed*, never trained, in the
//! paper's large-scale tables).

use crate::network::{Network, NetworkBuilder};

/// Caffe-style LeNet for 1×28×28 MNIST images (Figure 3; [LeCun 1998]).
///
/// conv(20@5×5) → pool2 → conv(50@5×5) → pool2 → fc500 → ReLU → fc10.
/// About 431 k parameters.
pub fn lenet(seed: u64) -> Network {
    NetworkBuilder::new([1, 28, 28])
        .conv2d(20, 5, 1, 0)
        .maxpool(2, 2)
        .conv2d(50, 5, 1, 0)
        .maxpool(2, 2)
        .flatten()
        .dense(500)
        .relu()
        .dense(10)
        .build(seed)
}

/// A small LeNet-shaped network for 1×12×12 images (used by the
/// time-to-accuracy experiments where hundreds of independent runs are
/// needed). About 11 k parameters.
pub fn lenet_tiny(seed: u64) -> Network {
    NetworkBuilder::new([1, 12, 12])
        .conv2d(8, 3, 1, 1)
        .relu()
        .maxpool(2, 2)
        .flatten()
        .dense(32)
        .relu()
        .dense(10)
        .build(seed)
}

/// AlexNet-style network for 3×32×32 CIFAR images (cuda-convnet layout:
/// three conv+pool stages with LRN, one classifier layer).
pub fn alexnet_cifar(seed: u64) -> Network {
    NetworkBuilder::new([3, 32, 32])
        .conv2d(32, 5, 1, 2)
        .relu()
        .maxpool(3, 2)
        .lrn()
        .conv2d(32, 5, 1, 2)
        .relu()
        .maxpool(3, 2)
        .lrn()
        .conv2d(64, 5, 1, 2)
        .relu()
        .maxpool(3, 2)
        .flatten()
        .dense(10)
        .build(seed)
}

/// A reduced AlexNet-shaped network for 3×16×16 synthetic-CIFAR images.
/// About 23 k parameters; trains in seconds.
pub fn alexnet_cifar_tiny(seed: u64) -> Network {
    NetworkBuilder::new([3, 16, 16])
        .conv2d(8, 3, 1, 1)
        .relu()
        .maxpool(2, 2)
        .conv2d(16, 3, 1, 1)
        .relu()
        .maxpool(2, 2)
        .flatten()
        .dense(64)
        .relu()
        .dense(10)
        .build(seed)
}

/// A runnable GoogLeNet-shaped network for 3×16×16 images: stem conv →
/// two inception modules with a pool between → global average pool →
/// classifier. Preserves the architecture *family* of the paper's
/// large-scale workload (§4.2) at a size that trains in seconds; the
/// full-size GoogLeNet exists as a cost spec in [`crate::spec`].
pub fn googlenet_tiny(seed: u64) -> Network {
    use crate::inception::InceptionConfig;
    NetworkBuilder::new([3, 16, 16])
        .conv2d(8, 3, 1, 1)
        .relu()
        .maxpool(2, 2)
        .inception(InceptionConfig {
            c1: 4,
            c3_reduce: 4,
            c3: 6,
            c5_reduce: 2,
            c5: 3,
            pool_proj: 3,
        })
        .relu()
        .maxpool(2, 2)
        .inception(InceptionConfig {
            c1: 6,
            c3_reduce: 6,
            c3: 8,
            c5_reduce: 2,
            c5: 4,
            pool_proj: 4,
        })
        .relu()
        .avgpool(4, 4)
        .flatten()
        .dense(10)
        .build(seed)
}

/// A plain multi-layer perceptron: `input → hidden… → classes` with ReLU
/// between stages. Useful for controlled optimizer comparisons where conv
/// compute would only add noise.
pub fn mlp(input: usize, hidden: &[usize], classes: usize, seed: u64) -> Network {
    let mut b = NetworkBuilder::new([input]);
    for &h in hidden {
        b = b.dense(h).relu();
    }
    b.dense(classes).build(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use easgd_tensor::{Rng, Tensor};

    #[test]
    fn lenet_parameter_count() {
        let net = lenet(1);
        // conv1: 20*25+20=520; conv2: 50*20*25+50=25_050;
        // fc1: 50*4*4=800 → 500: 400_500; fc2: 5_010.
        assert_eq!(net.num_params(), 520 + 25_050 + 400_500 + 5_010);
        assert_eq!(net.num_classes(), 10);
    }

    #[test]
    fn lenet_tiny_is_small_and_runs() {
        let mut net = lenet_tiny(2);
        assert!(net.num_params() < 15_000, "{} params", net.num_params());
        let x = Tensor::zeros([2, 1, 12, 12]);
        let y = net.forward(&x, false);
        assert_eq!(y.shape().dims(), &[2, 10]);
    }

    #[test]
    fn alexnet_cifar_forward_shape() {
        let mut net = alexnet_cifar(3);
        let x = Tensor::zeros([1, 3, 32, 32]);
        let y = net.forward(&x, false);
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn alexnet_tiny_trains_on_blobs() {
        // Class-dependent constant images must be separable quickly.
        let mut net = alexnet_cifar_tiny(4);
        let mut rng = Rng::new(5);
        let n = 32;
        let per = 3 * 16 * 16;
        let mut xs = Vec::with_capacity(n * per);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let base = if class == 0 { -0.5 } else { 0.5 };
            for _ in 0..per {
                xs.push(base + 0.2 * rng.normal());
            }
            labels.push(class);
        }
        let x = Tensor::from_vec([n, 3, 16, 16], xs);
        for _ in 0..30 {
            let _ = net.forward_backward(&x, &labels);
            let g = net.grads().as_slice().to_vec();
            easgd_tensor::ops::sgd_update(0.1, net.params_mut().as_mut_slice(), &g);
        }
        let last = net.forward_backward(&x, &labels);
        assert!(last.accuracy() > 0.9, "accuracy {}", last.accuracy());
    }

    #[test]
    fn googlenet_tiny_forward_and_train() {
        let mut net = googlenet_tiny(7);
        let x = Tensor::zeros([2, 3, 16, 16]);
        let y = net.forward(&x, false);
        assert_eq!(y.shape().dims(), &[2, 10]);
        // One training step produces finite loss and nonzero gradients in
        // the inception branch weights.
        let mut rng = Rng::new(8);
        let mut xb = Tensor::zeros([4, 3, 16, 16]);
        rng.fill_normal(xb.as_mut_slice(), 0.0, 1.0);
        let stats = net.forward_backward(&xb, &[0, 1, 2, 3]);
        assert!(stats.loss.is_finite());
        let inception_grads: f32 = net
            .grads()
            .segments()
            .iter()
            .filter(|s| s.name.contains("inception"))
            .map(|s| {
                net.grads().as_slice()[s.range()]
                    .iter()
                    .map(|g| g.abs())
                    .sum::<f32>()
            })
            .sum();
        assert!(inception_grads > 0.0, "inception branches got no gradient");
    }

    #[test]
    fn batchnorm_network_trains() {
        let mut net = NetworkBuilder::new([1, 8, 8])
            .conv2d(4, 3, 1, 1)
            .batchnorm()
            .relu()
            .flatten()
            .dense(10)
            .build(9);
        let mut rng = Rng::new(10);
        let mut x = Tensor::zeros([8, 1, 8, 8]);
        rng.fill_normal(x.as_mut_slice(), 0.0, 1.0);
        let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
        let first = net.forward_backward(&x, &labels).loss;
        for _ in 0..40 {
            let _ = net.forward_backward(&x, &labels);
            let g = net.grads().as_slice().to_vec();
            easgd_tensor::ops::sgd_update(0.1, net.params_mut().as_mut_slice(), &g);
        }
        let last = net.forward_backward(&x, &labels).loss;
        assert!(last < first, "BN net failed to train: {first} -> {last}");
    }

    #[test]
    fn mlp_builds_requested_depth() {
        let net = mlp(10, &[20, 20], 5, 6);
        // fc(10→20)+relu+fc(20→20)+relu+fc(20→5) = 5 layers
        assert_eq!(net.num_layers(), 5);
        assert_eq!(net.num_params(), 10 * 20 + 20 + 20 * 20 + 20 + 20 * 5 + 5);
    }
}
