// xtask: allow(wall-clock) — wall-clock trainer/driver: measures real elapsed time by design.
//! Original EASGD (Algorithm 1) on the simulated multi-GPU node.
//!
//! The baseline of the whole paper: the master (CPU) serves workers
//! (GPUs) strictly in rank order, one at a time. Two variants appear in
//! Table 3:
//!
//! * **Serialized** (`Original EASGD*`): the master dispatches worker
//!   `j`, waits for its forward/backward, collects the weight, updates —
//!   nothing overlaps. Only one GPU computes at any moment.
//! * **Pipelined** (`Original EASGD`): the master dispatches worker `j`
//!   and collects `j`'s *previous* result one sweep later, so worker
//!   compute hides behind the master's service loop. The master becomes
//!   purely communication-bound — Table 3's 87 % comm ratio.
//!
//! Both use the *unpacked* (per-layer) CPU↔GPU transfer path, because
//! packing (§5.2) is one of the optimizations the paper adds on the way
//! to Sync EASGD. Batches travel as [`BatchMsg`] frames; the elastic
//! math and result assembly come from [`crate::engine`].

use crate::config::TrainConfig;
use crate::engine::{assemble_sim, rank_rng, ElasticRule, LocalStep, RankOutcome, SALT_PHI};
use crate::metrics::RunResult;
use crate::simcost::SimCosts;
use easgd_cluster::{tags, BatchMsg, ClusterConfig, Comm, TimeCategory, VirtualCluster};
use easgd_data::Dataset;
use easgd_nn::Network;
use easgd_tensor::Rng;
use std::time::Instant;

/// Which Algorithm 1 schedule to simulate.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OriginalMode {
    /// No overlap (Table 3 row "Original EASGD*").
    Serialized,
    /// Worker compute hidden under the master's round-robin service loop
    /// (Table 3 row "Original EASGD").
    Pipelined,
}

impl OriginalMode {
    fn label(&self) -> &'static str {
        match self {
            OriginalMode::Serialized => "Original EASGD*",
            OriginalMode::Pipelined => "Original EASGD",
        }
    }
}

/// Runs Original EASGD on a simulated `cfg.workers`-GPU node.
///
/// `cfg.iterations` is the per-worker step count; the master performs
/// `iterations × workers` round-robin interactions in total. Returns the
/// master's simulated-time breakdown (the Table 3 row).
pub fn original_easgd_sim(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
    costs: &SimCosts,
    mode: OriginalMode,
) -> RunResult {
    cfg.validate();
    let g = cfg.workers;
    let total = cfg.iterations * g;
    let cluster = ClusterConfig::new(g + 1);
    let up = costs.unpacked_weight_time();
    let down = costs.unpacked_weight_time();
    let wall_start = Instant::now();

    let outs = VirtualCluster::run(&cluster, |comm: &mut Comm| {
        if comm.rank() == 0 {
            master_loop(comm, proto, train, cfg, costs, mode, total, up, down)
        } else {
            worker_loop(comm, proto, cfg, costs, total)
        }
    });

    let wall = wall_start.elapsed().as_secs_f64();
    assemble_sim(mode.label(), proto, test, cfg.iterations, wall, outs)
}

#[allow(clippy::too_many_arguments)]
fn master_loop(
    comm: &mut Comm,
    proto: &Network,
    train: &Dataset,
    cfg: &TrainConfig,
    costs: &SimCosts,
    mode: OriginalMode,
    total: usize,
    up: f64,
    down: f64,
) -> RankOutcome {
    let g = cfg.workers;
    let rule = ElasticRule::from_config(cfg);
    let mut rng = Rng::new(cfg.seed);
    let mut center = proto.params().as_slice().to_vec();
    let mut inflight = vec![false; g + 1];
    // Receive scratch for the worker-weight collects, reused every round.
    let mut wbuf: Vec<f32> = Vec::new();

    let collect = |comm: &mut Comm, center: &mut [f32], wbuf: &mut Vec<f32>, j: usize| {
        // The wait (worker still computing) is attributed to
        // forward/backward, the transfer to CPU↔GPU parameter traffic —
        // Table 3's accounting.
        comm.recv_costed_into(
            j,
            tags::ORIG_WEIGHT,
            up,
            TimeCategory::ForwardBackward,
            TimeCategory::CpuGpuParam,
            wbuf,
        );
        rule.center_pull(center, wbuf);
        comm.charge(TimeCategory::CpuUpdate, costs.cpu_update);
    };

    for t in 0..total {
        let j = 1 + (t % g);
        if mode == OriginalMode::Pipelined && inflight[j] {
            collect(comm, &mut center, &mut wbuf, j);
        }
        let batch = train.sample_batch(&mut rng, cfg.batch);
        let pixels = batch.images.as_slice();
        let mut frame = comm.take_buffer(3 + batch.labels.len() + pixels.len());
        BatchMsg::encode_into(pixels, &batch.labels, &mut frame);
        comm.send_from_costed(
            j,
            tags::ORIG_DATA,
            frame,
            costs.data_time(),
            TimeCategory::CpuGpuData,
        );
        comm.send_costed(
            j,
            tags::ORIG_CENTER,
            &center,
            down,
            TimeCategory::CpuGpuParam,
        );
        inflight[j] = true;
        if mode == OriginalMode::Serialized {
            collect(comm, &mut center, &mut wbuf, j);
            inflight[j] = false;
        }
    }
    // Drain the pipeline.
    if mode == OriginalMode::Pipelined {
        for (j, flag) in inflight.iter_mut().enumerate().skip(1) {
            if std::mem::take(flag) {
                collect(comm, &mut center, &mut wbuf, j);
            }
        }
    }
    RankOutcome::Center {
        center,
        report: comm.report(),
        trace: Vec::new(),
        loss_trace: Vec::new(),
    }
}

fn worker_loop(
    comm: &mut Comm,
    proto: &Network,
    cfg: &TrainConfig,
    costs: &SimCosts,
    total: usize,
) -> RankOutcome {
    let g = cfg.workers;
    let me = comm.rank();
    let rounds = (0..total).filter(|t| 1 + (t % g) == me).count();
    let rule = ElasticRule::from_config(cfg);
    let mut local = LocalStep::new(proto);
    let mut jitter_rng = rank_rng(cfg.seed, SALT_PHI, me);
    // Receive scratch, reused across rounds (pool-recycled payloads).
    let mut payload: Vec<f32> = Vec::new();
    let mut center: Vec<f32> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    for _ in 0..rounds {
        comm.recv_into(0, tags::ORIG_DATA, TimeCategory::Other, &mut payload);
        comm.recv_into(0, tags::ORIG_CENTER, TimeCategory::Other, &mut center);
        let pixels = match BatchMsg::decode_into(&payload, cfg.batch, &mut labels) {
            Ok(x) => x,
            Err(e) => panic!("batch codec (rank {me}): {e}"),
        };
        local.forward_backward_flat(cfg.batch, pixels, &labels);
        let jit = 1.0 + costs.compute_jitter * jitter_rng.uniform() as f64;
        comm.charge(TimeCategory::ForwardBackward, costs.fwd_bwd * jit);
        // Ship W_jt (pre-update, per Algorithm 1 lines 12–14); the master
        // pays the transfer on its own timeline.
        comm.send_costed(
            0,
            tags::ORIG_WEIGHT,
            local.params(),
            0.0,
            TimeCategory::Other,
        );
        local.elastic_step_against(&rule, &center);
        comm.charge(TimeCategory::GpuUpdate, costs.gpu_update);
    }
    RankOutcome::Worker {
        report: None,
        last_loss: local.last_loss(),
        loss_trace: local.take_loss_trace(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easgd_data::SyntheticSpec;
    use easgd_nn::models::lenet_tiny;

    fn setup() -> (Network, Dataset, Dataset) {
        let task = SyntheticSpec::mnist_small().task(51);
        let (train, test) = task.train_test(600, 200, 52);
        (lenet_tiny(53), train, test)
    }

    fn cfg(iters: usize) -> TrainConfig {
        TrainConfig {
            workers: 4,
            batch: 16,
            eta: 0.05,
            rho: 0.3,
            mu: 0.9,
            iterations: iters,
            seed: 61,
            comm_period: 1,
        }
    }

    #[test]
    fn pipelined_learns_and_reports_breakdown() {
        let (proto, train, test) = setup();
        let r = original_easgd_sim(
            &proto,
            &train,
            &test,
            &cfg(50),
            &SimCosts::mnist_lenet_4gpu(),
            OriginalMode::Pipelined,
        );
        assert!(r.accuracy > 0.3, "acc = {}", r.accuracy);
        assert!(r.sim_seconds.unwrap() > 0.0);
        let b = r.breakdown.unwrap();
        assert!(b.get(TimeCategory::CpuGpuParam) > 0.0);
        assert!(b.get(TimeCategory::CpuUpdate) > 0.0);
    }

    #[test]
    fn pipelined_is_comm_bound_serialized_is_not() {
        // The Table 3 contrast: pipelining hides compute under the
        // service loop, pushing the comm ratio way up (52% → 87% in the
        // paper) while *reducing* total time.
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let c = cfg(25);
        let pip = original_easgd_sim(&proto, &train, &test, &c, &costs, OriginalMode::Pipelined);
        let ser = original_easgd_sim(&proto, &train, &test, &c, &costs, OriginalMode::Serialized);
        let pip_t = pip.sim_seconds.unwrap();
        let ser_t = ser.sim_seconds.unwrap();
        assert!(pip_t < ser_t, "pipelined {pip_t} !< serialized {ser_t}");
        let pip_ratio = pip.breakdown.as_ref().unwrap().comm_ratio();
        let ser_ratio = ser.breakdown.as_ref().unwrap().comm_ratio();
        assert!(
            pip_ratio > ser_ratio,
            "pipelined ratio {pip_ratio} !> serialized {ser_ratio}"
        );
        assert!(
            pip_ratio > 0.7,
            "expected comm-bound master, got {pip_ratio}"
        );
    }

    #[test]
    fn serialized_time_matches_phase_sum() {
        // Every serialized iteration is the exact sum of its phases.
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let c = cfg(5);
        let r = original_easgd_sim(&proto, &train, &test, &c, &costs, OriginalMode::Serialized);
        let per_iter = costs.data_time()
            + 2.0 * costs.unpacked_weight_time()
            + costs.fwd_bwd
            + costs.cpu_update;
        let expect = per_iter * (c.iterations * c.workers) as f64;
        let got = r.sim_seconds.unwrap();
        assert!(
            (got - expect).abs() / expect < 0.05,
            "sim {got} vs expected {expect}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (proto, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let c = cfg(10);
        let a = original_easgd_sim(&proto, &train, &test, &c, &costs, OriginalMode::Pipelined);
        let b = original_easgd_sim(&proto, &train, &test, &c, &costs, OriginalMode::Pipelined);
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.sim_seconds, b.sim_seconds);
        assert_eq!(a.center_hash, b.center_hash);
    }
}
