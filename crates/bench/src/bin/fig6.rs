//! Figure 6: each of the paper's methods vs its existing counterpart,
//! accuracy vs time, one independent run per point.
//!
//! ```sh
//! cargo run --release -p easgd-bench --bin fig6              # all panels
//! cargo run --release -p easgd-bench --bin fig6 -- --panel 3 # one panel
//! ```
//!
//! Panels 1–3 (Async EASGD vs Async SGD, Async MEASGD vs Async MSGD,
//! Hogwild EASGD vs Hogwild SGD) run wall-clock on real threads; panel 4
//! (Sync EASGD vs Original EASGD) runs on the simulated 4-GPU node where
//! the round-robin vs tree-reduction cost difference lives.

use easgd::metrics::RunResult;
use easgd::{
    async_easgd, async_measgd, async_msgd, async_sgd, hogwild_easgd, hogwild_sgd,
    original_easgd_sim, sync_easgd_sim, OriginalMode, SimCosts, SyncVariant, TrainConfig,
};
use easgd_bench::{arg_value, figure_budgets, figure_task, print_run, print_run_header};
use easgd_data::Dataset;
use easgd_nn::Network;

type WallRunner = fn(&Network, &Dataset, &Dataset, &TrainConfig) -> RunResult;

fn wall_panel(title: &str, ours: WallRunner, theirs: WallRunner, eta: f32) {
    println!("\n=== {title} ===");
    let (net, train, test) = figure_task();
    print_run_header();
    for &iters in &figure_budgets() {
        let cfg = TrainConfig::figure6(iters).with_eta(eta);
        print_run(&theirs(&net, &train, &test, &cfg));
        print_run(&ours(&net, &train, &test, &cfg));
    }
}

fn sim_panel() {
    println!("\n=== Figure 6.4: Sync EASGD vs Original EASGD (simulated 4-GPU node) ===");
    let (net, train, test) = figure_task();
    let costs = SimCosts::mnist_lenet_4gpu();
    print_run_header();
    for &iters in &figure_budgets() {
        let cfg = TrainConfig::figure6(iters);
        print_run(&original_easgd_sim(
            &net,
            &train,
            &test,
            &cfg,
            &costs,
            OriginalMode::Pipelined,
        ));
        print_run(&sync_easgd_sim(
            &net,
            &train,
            &test,
            &cfg,
            &costs,
            SyncVariant::Easgd3,
            0,
        ));
    }
}

fn main() {
    let panel = arg_value("--panel");
    let want = |p: &str| panel.is_none() || panel.as_deref() == Some(p);
    if want("1") {
        wall_panel(
            "Figure 6.1: Async EASGD vs Async SGD",
            async_easgd,
            async_sgd,
            0.2,
        );
    }
    if want("2") {
        wall_panel(
            "Figure 6.2: Async MEASGD vs Async MSGD",
            async_measgd,
            async_msgd,
            0.02,
        );
    }
    if want("3") {
        wall_panel(
            "Figure 6.3: Hogwild EASGD vs Hogwild SGD",
            hogwild_easgd,
            hogwild_sgd,
            0.2,
        );
    }
    if want("4") {
        sim_panel();
    }
}
