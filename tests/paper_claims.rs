//! Direct checks of the paper's headline quantitative claims, at the
//! reproduction's scale (see EXPERIMENTS.md for the full paper-vs-
//! measured record).

use knl_easgd::algorithms::weak_scaling::{INTEL_CAFFE_GOOGLENET_2176, INTEL_CAFFE_VGG_2176};
use knl_easgd::hardware::collective::{reduce_tree, round_robin_exchange};
use knl_easgd::nn::spec::{spec_alexnet, spec_googlenet, spec_vgg19};
use knl_easgd::nn::{CommSchedule, LayoutKind};
use knl_easgd::prelude::*;

/// §1 / contribution (1): tree reduction replaces the round-robin rule —
/// Θ(log P) vs Θ(P).
#[test]
fn tree_vs_round_robin_asymptotics() {
    let link = AlphaBeta::fdr_infiniband();
    let w = spec_alexnet().weight_bytes();
    let speedup_16 = round_robin_exchange(&link, 16, w) / reduce_tree(&link, 16, w);
    let speedup_256 = round_robin_exchange(&link, 256, w) / reduce_tree(&link, 256, w);
    assert!((speedup_16 - 4.0).abs() < 1e-9); // 16/log2(16)
    assert!((speedup_256 - 32.0).abs() < 1e-9); // 256/log2(256)
}

/// §5.2 / Figure 10: packed single-layer communication strictly beats
/// per-layer messages on every Table 2 network, and the gap equals the
/// saved latency terms.
#[test]
fn packed_layout_wins_on_every_table2_network() {
    for spec in [spec_alexnet(), spec_googlenet(), spec_vgg19()] {
        let packed = CommSchedule::from_spec(&spec, LayoutKind::Packed);
        let unpacked = CommSchedule::from_spec(&spec, LayoutKind::PerLayer);
        for link in AlphaBeta::table2() {
            let tp = packed.time_alpha_beta(link.alpha_s, link.beta_s_per_byte);
            let tu = unpacked.time_alpha_beta(link.alpha_s, link.beta_s_per_byte);
            assert!(tp < tu, "{} on {}", spec.name, link.name);
            let saved = (unpacked.num_messages() - 1) as f64 * link.alpha_s;
            assert!((tu - tp - saved).abs() < 1e-12);
        }
    }
}

/// §6.1 / Table 3: the Sync EASGD chain cuts the communication ratio
/// from ~87% to well under 30% and yields a large speedup at equal
/// gradient budget.
#[test]
fn table3_shape_comm_ratio_collapses() {
    let task = SyntheticSpec::mnist_small().task(8001);
    let (train, test) = task.train_test(600, 200, 8002);
    let net = lenet_tiny(8003);
    let costs = SimCosts::mnist_lenet_4gpu();
    let cfg = TrainConfig::figure6(30).with_seed(8004);

    let orig = original_easgd_sim(&net, &train, &test, &cfg, &costs, OriginalMode::Pipelined);
    let sync3 = sync_easgd_sim(&net, &train, &test, &cfg, &costs, SyncVariant::Easgd3, 0);

    let orig_ratio = orig.breakdown.as_ref().unwrap().comm_ratio();
    let sync_ratio = sync3.breakdown.as_ref().unwrap().comm_ratio();
    assert!(orig_ratio > 0.75, "original comm ratio {orig_ratio}");
    assert!(sync_ratio < 0.30, "sync3 comm ratio {sync_ratio}");

    let speedup = orig.sim_seconds.unwrap() / sync3.sim_seconds.unwrap();
    assert!(
        speedup > 3.0,
        "expected multi-x speedup at equal budget, got {speedup:.2}"
    );
}

/// §6.2 / Figure 12: the MCDRAM capacity rule allows exactly 16
/// partitions for AlexNet + one CIFAR copy.
#[test]
fn figure12_capacity_gate() {
    let chip = KnlChip::cori_node();
    let alexnet = 249_000_000; // §6.2's numbers
    let cifar_copy = 687_000_000;
    assert_eq!(
        chip.max_partitions(alexnet, cifar_copy, &[1, 4, 8, 16, 32]),
        16
    );
}

/// §7.1 / Table 4: weak-scaling efficiencies land in the paper's bands
/// and beat the Intel Caffe numbers at 2176 cores.
#[test]
fn table4_efficiency_bands() {
    let g = WeakScalingModel::googlenet_imagenet();
    let v = WeakScalingModel::vgg_imagenet();
    // 4352 cores = 64 nodes: paper 91.6% / 80.2%.
    assert!(
        (0.85..1.0).contains(&g.efficiency(64)),
        "{}",
        g.efficiency(64)
    );
    assert!(
        (0.70..0.95).contains(&v.efficiency(64)),
        "{}",
        v.efficiency(64)
    );
    // 2176 cores = 32 nodes: beat Intel Caffe's 87% / 62%.
    assert!(g.efficiency(32) > INTEL_CAFFE_GOOGLENET_2176);
    assert!(v.efficiency(32) > INTEL_CAFFE_VGG_2176);
    // GoogLeNet scales better than VGG everywhere (weight size ratio).
    for n in [2usize, 8, 32, 64] {
        assert!(g.efficiency(n) > v.efficiency(n));
    }
}

/// §8: Sync EASGD is deterministic and reproducible — bit-identical
/// accuracy and simulated time across runs.
#[test]
fn sync_easgd_determinism_claim() {
    let task = SyntheticSpec::mnist_small().task(8011);
    let (train, test) = task.train_test(400, 100, 8012);
    let net = lenet_tiny(8013);
    let costs = SimCosts::mnist_lenet_4gpu();
    let cfg = TrainConfig::figure6(20).with_seed(8014);
    let a = sync_easgd_sim(&net, &train, &test, &cfg, &costs, SyncVariant::Easgd3, 0);
    let b = sync_easgd_sim(&net, &train, &test, &cfg, &costs, SyncVariant::Easgd3, 0);
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.sim_seconds, b.sim_seconds);
    let shared_a = sync_easgd_shared(&net, &train, &test, &cfg);
    let shared_b = sync_easgd_shared(&net, &train, &test, &cfg);
    assert_eq!(shared_a.accuracy, shared_b.accuracy);
}

/// Table 1: the dataset cards match the paper.
#[test]
fn table1_dataset_cards() {
    let cards = knl_easgd::data::standard_cards();
    assert_eq!(cards[0].training_images, 60_000);
    assert_eq!(cards[1].pixels, "3x32x32");
    assert_eq!(cards[2].classes, 1000);
    assert!((cards[2].random_guess_accuracy() - 0.001).abs() < 1e-12);
}

/// Table 2: the α-β presets match the paper's numbers.
#[test]
fn table2_network_parameters() {
    let t = AlphaBeta::table2();
    assert_eq!(t[0].name, "Mellanox 56Gb/s FDR IB");
    assert!((t[0].alpha_s - 0.7e-6).abs() < 1e-15);
    assert!((t[1].beta_s_per_byte - 0.3e-9).abs() < 1e-18);
    assert!((t[2].alpha_s - 7.2e-6).abs() < 1e-15);
}
