//! The §6.2 Knights Landing partitioning study (Figure 12), scaled down:
//! split the chip into 1/4/8/16 groups, each with a private data +
//! weight replica in MCDRAM, and measure simulated time to a target
//! accuracy. The gradients are real; group concurrency and the memory
//! hierarchy live on the simulated clock.
//!
//! ```sh
//! cargo run --release --example knl_partition
//! ```

use knl_easgd::prelude::*;

fn main() {
    let task = SyntheticSpec::cifar_small().task(2001);
    let (train, test) = task.train_test(2_000, 500, 2002);
    let net = alexnet_cifar_tiny(2003);
    let chip = KnlChip::cori_node();
    let target = 0.88;
    // The G = 1 full-chip round time; the paper's AlexNet/CIFAR round is
    // ~0.5 s on one KNL (1605 s / ~3000 iterations).
    let base_round = 0.5;

    println!(
        "workload: AlexNet-tiny ({} params) on synthetic CIFAR; target accuracy {:.0}%",
        net.num_params(),
        target * 100.0
    );
    println!(
        "chip: {} cores, {:.0} GiB MCDRAM @ {:.0} GB/s (DDR4 @ {:.0} GB/s)",
        chip.cores,
        chip.mcdram_bytes as f64 / (1u64 << 30) as f64,
        chip.mcdram_bw / 1e9,
        chip.ddr_bw / 1e9
    );
    println!(
        "{:>6} {:>6} {:>8} {:>10} {:>8} {:>12} {:>9}",
        "groups", "fits?", "rounds", "s/round", "acc %", "sim seconds", "speedup"
    );

    let mut base: Option<f64> = None;
    for groups in [1usize, 4, 8, 16] {
        let cfg = TrainConfig {
            workers: groups,
            batch: 32,
            eta: 0.004,
            rho: 0.3,
            mu: 0.9,
            iterations: 5_000,
            seed: 2004,
            comm_period: 1,
        };
        let out = knl_easgd::algorithms::knl_partition_run(
            &net, &train, &test, &cfg, &chip, base_round, target, 2,
        );
        let secs = out.seconds_to_target;
        let speedup = match (base, secs) {
            (Some(b), Some(s)) => format!("{:.2}x", b / s),
            _ => "--".to_string(),
        };
        println!(
            "{:>6} {:>6} {:>8} {:>10.3} {:>8.1} {:>12} {:>9}",
            out.partitions,
            if out.fits_fast_memory { "yes" } else { "no" },
            out.rounds_run,
            out.round_seconds,
            out.final_accuracy * 100.0,
            secs.map_or("--".to_string(), |s| format!("{s:.1}")),
            speedup,
        );
        if base.is_none() {
            base = secs;
        }
    }
    println!(
        "\npaper (Figure 12, full-size AlexNet/CIFAR on a 68-core KNL, target 0.625):\n\
         1 part 1605 s, 4 parts 1025 s (1.6x), 8 parts 823 s (2.0x), 16 parts 490 s (3.3x)"
    );
}
