//! 2-D convolution via im2col + GEMM.
//!
//! The forward pass is batch-parallel: for large enough batches the
//! per-sample im2col + GEMM jobs fan out over the persistent
//! [`easgd_tensor::par::pool()`]. Jobs are owned closures over
//! `Arc`-shared weight/bias copies (the pool cannot borrow — see
//! DESIGN.md §8), each returning its `(col, y)` buffers, which the caller
//! writes back in sample order — so the result is bit-identical to the
//! serial loop at any worker count.

use crate::layer::{batch_of, Init, Layer, ParamSpec};
use easgd_tensor::par::{pool, WorkerPool};
use easgd_tensor::{col2im, im2col, Conv2dGeometry};
use easgd_tensor::{gemm, ParamArena, ScratchPolicy, Tensor, TrainScratch, Transpose};
use std::sync::Arc;

/// Batches below this many forward flops (`2·b·oc·cols·rows`) run the
/// serial per-sample loop: dispatch plus the owned operand copies would
/// cost more than they parallelize. Mirrors the flop threshold used by
/// `easgd_tensor::gemm` for the same reason.
const PAR_FLOPS: u64 = 8 << 20;

/// One sample's forward work: lower `image` into `col` and compute
/// `y = W·col + bias` (`y` laid out `[out_channels, out_h·out_w]`).
fn sample_forward(
    geom: &Conv2dGeometry,
    out_channels: usize,
    w: &[f32],
    bias: &[f32],
    image: &[f32],
    col: &mut Vec<f32>,
    y: &mut [f32],
) {
    let (rows, cols) = (geom.col_rows(), geom.col_cols());
    col.resize(rows * cols, 0.0);
    im2col(geom, image, col);
    gemm(
        Transpose::No,
        Transpose::No,
        out_channels,
        cols,
        rows,
        1.0,
        w,
        col,
        0.0,
        y,
    );
    for (oc, plane) in y.chunks_mut(cols).enumerate() {
        let bc = bias[oc];
        plane.iter_mut().for_each(|v| *v += bc);
    }
}

/// Convolutional layer.
///
/// Weights are stored `[out_channels, in_channels·k_h·k_w]` row-major —
/// exactly the left operand of the im2col GEMM — plus one bias per output
/// channel.
#[derive(Clone, Debug)]
pub struct Conv2d {
    /// Layer name used for parameter segments.
    pub name: String,
    /// Spatial geometry (input dims, kernel, stride, padding).
    pub geom: Conv2dGeometry,
    /// Number of output channels (filters).
    pub out_channels: usize,
    w_seg: usize,
    b_seg: usize,
    /// Cached im2col matrices, one per sample of the last forward batch.
    col_cache: Vec<Vec<f32>>,
    /// Per-sample output buffers recycled through the parallel fan-out
    /// (jobs take them by move and hand them back as results).
    y_cache: Vec<Vec<f32>>,
    /// Per-sample input copies recycled through the parallel fan-out.
    image_cache: Vec<Vec<f32>>,
    /// Shared weight/bias copies for the parallel fan-out. Steady state
    /// refreshes them in place via `Arc::make_mut` — after `pool.run`
    /// returns, every job's clone has been dropped, so the refcount is
    /// back to one and no reallocation happens.
    w_shared: Option<Arc<Vec<f32>>>,
    bias_shared: Option<Arc<Vec<f32>>>,
    /// Backward's `Wᵀ·gy` panel, reused across samples and steps.
    grad_col: Vec<f32>,
}

/// Sizes a per-sample buffer list to at least `b` slots. Grow-only:
/// shrinking batches (ragged serving dispatches alternate sizes) keep
/// the extra slots and their accumulated capacity, so a later return to
/// the larger batch reuses them instead of re-allocating. Callers
/// iterate only the first `b` slots.
fn ensure_slots(cache: &mut Vec<Vec<f32>>, b: usize) {
    if cache.len() < b {
        cache.resize_with(b, Vec::new);
    }
}

/// Refreshes an `Arc`-shared operand copy from `src`, replacing it
/// outright under the churn policy (the seed path built a fresh
/// `Arc<Vec<f32>>` every step). Returns a handle to the refreshed
/// buffer for fanning out to worker jobs.
fn refresh_shared(
    shared: &mut Option<Arc<Vec<f32>>>,
    src: &[f32],
    scratch: &mut TrainScratch,
) -> Arc<Vec<f32>> {
    match shared {
        Some(arc) if scratch.policy() == ScratchPolicy::Pooled => {
            let buf = Arc::make_mut(arc);
            buf.resize(src.len(), 0.0);
            buf.copy_from_slice(src);
            arc.clone()
        }
        _ => {
            let arc = Arc::new(src.to_vec());
            scratch.note_external_alloc();
            *shared = Some(arc.clone());
            arc
        }
    }
}

impl Conv2d {
    /// A convolution over `geom` producing `out_channels` feature maps.
    pub fn new(name: impl Into<String>, geom: Conv2dGeometry, out_channels: usize) -> Self {
        assert!(geom.is_valid(), "invalid conv geometry {geom:?}");
        assert!(out_channels > 0, "out_channels must be > 0");
        Self {
            name: name.into(),
            geom,
            out_channels,
            w_seg: usize::MAX,
            b_seg: usize::MAX,
            col_cache: Vec::new(),
            y_cache: Vec::new(),
            image_cache: Vec::new(),
            w_shared: None,
            bias_shared: None,
            grad_col: Vec::new(),
        }
    }

    /// Elements in the filter bank.
    pub fn weight_len(&self) -> usize {
        self.out_channels * self.geom.col_rows()
    }

    /// Total parameters (weights + biases).
    pub fn num_params(&self) -> usize {
        self.weight_len() + self.out_channels
    }

    /// Per-sample output feature-map size `[out_channels, out_h, out_w]`.
    pub fn output_len(&self) -> usize {
        self.out_channels * self.geom.col_cols()
    }

    /// [`Layer::forward`] against an explicit pool (the trait method uses
    /// the process-wide one); exposed for tests that need a local pool
    /// with a known worker count.
    pub fn forward_with_pool(
        &mut self,
        pool: &WorkerPool,
        params: &ParamArena,
        input: &Tensor,
    ) -> Tensor {
        let mut out = Tensor::default();
        let mut scratch = TrainScratch::default();
        self.forward_with_pool_into(pool, params, input, &mut out, &mut scratch);
        out
    }

    /// [`Layer::forward_into`] against an explicit pool. All per-sample
    /// panels (im2col columns, output rows, input copies for the fan-out)
    /// and the shared weight/bias `Arc`s are recycled across calls, so a
    /// warmed-up step allocates nothing on either the serial or the
    /// parallel branch.
    pub fn forward_with_pool_into(
        &mut self,
        pool: &WorkerPool,
        params: &ParamArena,
        input: &Tensor,
        out: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        let b = batch_of(input);
        let in_len = self.geom.input_len();
        assert_eq!(
            input.len(),
            b * in_len,
            "conv '{}' expected {} elements/sample, input is {:?}",
            self.name,
            in_len,
            input.shape()
        );
        let w = params.segment(self.w_seg);
        let bias = params.segment(self.b_seg);
        let (rows, cols) = (self.geom.col_rows(), self.geom.col_cols());
        let out_len = self.output_len();
        // Every output element is stored by the β = 0 GEMM, so the reused
        // buffer needs no zeroing.
        scratch.shape_tensor(
            out,
            &[b, self.out_channels, self.geom.out_h(), self.geom.out_w()],
        );

        ensure_slots(&mut self.col_cache, b);
        for col in self.col_cache.iter_mut().take(b) {
            scratch.ensure_f32(col, rows * cols);
        }

        let flops = 2 * (b * self.out_channels * cols * rows) as u64;
        if pool.threads() > 1 && b >= 2 && flops >= PAR_FLOPS {
            // Owned-job fan-out: one job per sample over Arc-shared
            // weights; results return in sample order via `run`. Each job
            // takes its sample's recycled buffers by move and returns them,
            // so steady state allocates only the pool's job list.
            let w_shared = refresh_shared(&mut self.w_shared, w, scratch);
            let bias_shared = refresh_shared(&mut self.bias_shared, bias, scratch);
            ensure_slots(&mut self.y_cache, b);
            ensure_slots(&mut self.image_cache, b);
            let geom = self.geom;
            let out_channels = self.out_channels;
            let mut tasks = Vec::with_capacity(b);
            for s in 0..b {
                scratch.ensure_f32(&mut self.y_cache[s], out_len);
                scratch.ensure_f32(&mut self.image_cache[s], in_len);
                self.image_cache[s]
                    .copy_from_slice(&input.as_slice()[s * in_len..(s + 1) * in_len]);
                let image = std::mem::take(&mut self.image_cache[s]);
                let mut col = std::mem::take(&mut self.col_cache[s]);
                let mut y = std::mem::take(&mut self.y_cache[s]);
                // Arc refcount bumps, not data copies; the weight
                // buffers themselves are reused across steps.
                let w = w_shared.clone(); // xtask: allow(step-alloc)
                let bias = bias_shared.clone(); // xtask: allow(step-alloc)
                tasks.push(move || {
                    sample_forward(&geom, out_channels, &w, &bias, &image, &mut col, &mut y);
                    (image, col, y)
                });
            }
            for (s, (image, col, y)) in pool.run(tasks).into_iter().enumerate() {
                out.as_mut_slice()[s * out_len..(s + 1) * out_len].copy_from_slice(&y);
                self.image_cache[s] = image;
                self.col_cache[s] = col;
                self.y_cache[s] = y;
            }
        } else {
            for (s, col) in self.col_cache.iter_mut().take(b).enumerate() {
                let image = &input.as_slice()[s * in_len..(s + 1) * in_len];
                let y = &mut out.as_mut_slice()[s * out_len..(s + 1) * out_len];
                sample_forward(&self.geom, self.out_channels, w, bias, image, col, y);
            }
        }
    }
}

impl Layer for Conv2d {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn param_specs(&self) -> Vec<ParamSpec> {
        let fan_in = self.geom.col_rows();
        let fan_out = self.out_channels * self.geom.k_h * self.geom.k_w;
        vec![
            ParamSpec {
                name: format!("{}.weight", self.name),
                len: self.weight_len(),
                init: Init::Xavier { fan_in, fan_out },
            },
            ParamSpec {
                name: format!("{}.bias", self.name),
                len: self.out_channels,
                init: Init::Constant(0.0),
            },
        ]
    }

    fn bind(&mut self, segments: &[usize]) {
        assert_eq!(segments.len(), 2, "conv expects weight+bias segments");
        self.w_seg = segments[0];
        self.b_seg = segments[1];
    }

    fn out_shape(&self) -> Vec<usize> {
        vec![self.out_channels, self.geom.out_h(), self.geom.out_w()]
    }

    fn forward_into(
        &mut self,
        params: &ParamArena,
        input: &Tensor,
        _train: bool,
        out: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        self.forward_with_pool_into(pool(), params, input, out, scratch);
    }

    fn backward_into(
        &mut self,
        params: &ParamArena,
        grads: &mut ParamArena,
        grad_out: &Tensor,
        grad_in: &mut Tensor,
        scratch: &mut TrainScratch,
    ) {
        let (rows, cols) = (self.geom.col_rows(), self.geom.col_cols());
        let out_len = self.output_len();
        // The slot list is grow-only, so its length is the *largest*
        // batch seen, not necessarily the last one — take the batch from
        // the gradient itself.
        let b = grad_out.len() / out_len;
        assert!(b > 0, "backward called before forward");
        assert_eq!(grad_out.len(), b * out_len, "grad_out shape mismatch");
        assert!(
            self.col_cache.len() >= b,
            "backward batch exceeds cached forward panels"
        );
        let in_len = self.geom.input_len();
        let w = params.segment(self.w_seg);

        // col2im zeroes each per-sample image slice itself before its
        // `+=` accumulation, and the slices tile grad_in exactly, so the
        // reused buffer needs no zeroing here. The β = 0 GEMM likewise
        // stores every element of grad_col.
        scratch.shape_tensor(
            grad_in,
            &[b, self.geom.in_channels, self.geom.in_h, self.geom.in_w],
        );
        scratch.ensure_f32(&mut self.grad_col, rows * cols);
        for s in 0..b {
            let gy = &grad_out.as_slice()[s * out_len..(s + 1) * out_len];
            let col = &self.col_cache[s];
            // gradW[oc, rows] += gy[oc, cols] · colᵀ
            gemm(
                Transpose::No,
                Transpose::Yes,
                self.out_channels,
                rows,
                cols,
                1.0,
                gy,
                col,
                1.0,
                grads.segment_mut(self.w_seg),
            );
            // gradB[oc] += Σ gy[oc,:]
            {
                let gb = grads.segment_mut(self.b_seg);
                for (oc, plane) in gy.chunks(cols).enumerate() {
                    gb[oc] += easgd_tensor::ops::sum(plane);
                }
            }
            // gradCol[rows, cols] = Wᵀ[rows, oc] · gy[oc, cols]
            gemm(
                Transpose::Yes,
                Transpose::No,
                rows,
                cols,
                self.out_channels,
                1.0,
                w,
                gy,
                0.0,
                &mut self.grad_col,
            );
            let gx = &mut grad_in.as_mut_slice()[s * in_len..(s + 1) * in_len];
            col2im(&self.geom, &self.grad_col, gx);
        }
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        // Caches are transient; cloning the configuration is enough.
        let mut c = self.clone();
        c.col_cache = Vec::new();
        c.y_cache = Vec::new();
        c.image_cache = Vec::new();
        c.w_shared = None;
        c.bias_shared = None;
        c.grad_col = Vec::new();
        Box::new(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{build_arenas, check_layer};

    fn small_geom() -> Conv2dGeometry {
        Conv2dGeometry {
            in_channels: 2,
            in_h: 5,
            in_w: 5,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn out_shape_follows_geometry() {
        let l = Conv2d::new("c", small_geom(), 4);
        assert_eq!(l.out_shape(), vec![4, 5, 5]);
        assert_eq!(l.num_params(), 4 * 2 * 9 + 4);
    }

    #[test]
    fn identity_kernel_passes_input_through() {
        // 1 input channel, 1 output channel, 1x1 kernel with weight 1 → copy.
        let geom = Conv2dGeometry {
            in_channels: 1,
            in_h: 3,
            in_w: 3,
            k_h: 1,
            k_w: 1,
            stride: 1,
            pad: 0,
        };
        let mut l = Conv2d::new("c", geom, 1);
        let (mut params, _) = build_arenas(&mut l, 1);
        params.segment_mut(0)[0] = 1.0;
        let x = Tensor::from_vec([1, 1, 3, 3], (0..9).map(|i| i as f32).collect());
        let y = l.forward(&params, &x, true);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn bias_is_added_per_channel() {
        let geom = Conv2dGeometry {
            in_channels: 1,
            in_h: 2,
            in_w: 2,
            k_h: 1,
            k_w: 1,
            stride: 1,
            pad: 0,
        };
        let mut l = Conv2d::new("c", geom, 2);
        let (mut params, _) = build_arenas(&mut l, 1);
        params.segment_mut(0).copy_from_slice(&[0.0, 0.0]); // zero kernels
        params.segment_mut(1).copy_from_slice(&[1.5, -2.0]);
        let x = Tensor::zeros([1, 1, 2, 2]);
        let y = l.forward(&params, &x, true);
        assert_eq!(&y.as_slice()[0..4], &[1.5; 4]);
        assert_eq!(&y.as_slice()[4..8], &[-2.0; 4]);
    }

    #[test]
    fn gradients_pass_finite_difference_check() {
        let mut l = Conv2d::new("c", small_geom(), 3);
        let (params, grads) = build_arenas(&mut l, 5);
        check_layer(&mut l, params, grads, &[2, 5, 5], 2, 1e-2, 11);
    }

    #[test]
    fn strided_padded_gradients_pass_check() {
        let geom = Conv2dGeometry {
            in_channels: 1,
            in_h: 7,
            in_w: 6,
            k_h: 3,
            k_w: 2,
            stride: 2,
            pad: 1,
        };
        let mut l = Conv2d::new("c", geom, 2);
        let (params, grads) = build_arenas(&mut l, 6);
        check_layer(&mut l, params, grads, &[1, 7, 6], 3, 1e-2, 12);
    }

    #[test]
    fn parallel_forward_is_bit_identical_to_serial() {
        // Large enough batch to clear PAR_FLOPS: rows = 4·9 = 36,
        // cols = 16·16 = 256, so flops = 2·48·16·256·36 ≈ 14.2M ≥ 8M.
        let geom = Conv2dGeometry {
            in_channels: 4,
            in_h: 16,
            in_w: 16,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        };
        let b = 48;
        let mut l = Conv2d::new("c", geom, 16);
        let (params, _) = build_arenas(&mut l, 3);
        let mut x = Tensor::zeros([b, 4, 16, 16]);
        easgd_tensor::Rng::new(21).fill_normal(x.as_mut_slice(), 0.0, 1.0);

        let serial_pool = WorkerPool::new(0); // threads() == 1 → serial loop
        let y_serial = l.forward_with_pool(&serial_pool, &params, &x);
        for workers in [1, 3] {
            let par_pool = WorkerPool::new(workers);
            let y_par = l.forward_with_pool(&par_pool, &params, &x);
            // Bit-exact, not approximate: the fan-out runs the same
            // per-sample kernel and writes back in sample order.
            assert_eq!(y_serial.as_slice(), y_par.as_slice(), "workers={workers}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid conv geometry")]
    fn oversized_kernel_is_rejected() {
        // 5×5 kernel cannot fit a 3×3 input with no padding; the old
        // `saturating_sub` geometry silently produced a 1×1 output here.
        let geom = Conv2dGeometry {
            in_channels: 1,
            in_h: 3,
            in_w: 3,
            k_h: 5,
            k_w: 5,
            stride: 1,
            pad: 0,
        };
        let _ = Conv2d::new("c", geom, 1);
    }

    #[test]
    #[should_panic(expected = "invalid conv geometry")]
    fn zero_stride_is_rejected() {
        let geom = Conv2dGeometry {
            in_channels: 1,
            in_h: 3,
            in_w: 3,
            k_h: 1,
            k_w: 1,
            stride: 0,
            pad: 0,
        };
        let _ = Conv2d::new("c", geom, 1);
    }

    #[test]
    fn batch_samples_are_independent() {
        let mut l = Conv2d::new("c", small_geom(), 2);
        let (params, _) = build_arenas(&mut l, 7);
        let mut rng = easgd_tensor::Rng::new(8);
        let mut x1 = Tensor::zeros([1, 2, 5, 5]);
        rng.fill_normal(x1.as_mut_slice(), 0.0, 1.0);
        let mut x2 = Tensor::zeros([1, 2, 5, 5]);
        rng.fill_normal(x2.as_mut_slice(), 0.0, 1.0);
        let y1 = l.forward(&params, &x1, true);
        let y2 = l.forward(&params, &x2, true);
        let mut both = Tensor::zeros([2, 2, 5, 5]);
        both.as_mut_slice()[..50].copy_from_slice(x1.as_slice());
        both.as_mut_slice()[50..].copy_from_slice(x2.as_slice());
        let y = l.forward(&params, &both, true);
        assert_eq!(&y.as_slice()[..y1.len()], y1.as_slice());
        assert_eq!(&y.as_slice()[y1.len()..], y2.as_slice());
    }
}
