// xtask: allow(wall-clock) — wall-clock trainer/driver: measures real elapsed time by design.
//! Hierarchical (two-level) Sync EASGD for multi-node multi-GPU
//! clusters.
//!
//! The paper's GPU testbed is 16 nodes × multiple Tesla boards behind
//! PCIe switches, nodes linked by 56 Gb/s FDR InfiniBand (§10.4) — and
//! the acknowledgements mention a multi-node multi-GPU EASGD “with less
//! global communication overhead”. This module implements that natural
//! two-level schedule:
//!
//! 1. **intra-node**: each node's GPUs tree-reduce their local weights
//!    over the PCIe switch to a node leader;
//! 2. **inter-node**: the leaders ring-allreduce the node sums over the
//!    InfiniBand fabric (bandwidth-optimal; `easgd-cluster`'s executable
//!    ring);
//! 3. the center update (Equation 2) is applied redundantly by every
//!    leader on the identical global sum, and the result is tree-
//!    broadcast back down the PCIe switches.
//!
//! Versus a flat allreduce over all `nodes × gpus` endpoints, the
//! hierarchy sends only one message per *node* across the slow fabric —
//! the “less global communication” of the acknowledgement.

use crate::config::TrainConfig;
use crate::engine::{assemble_sim, worker_rng, ElasticRule, LocalStep, RankOutcome, SALT_PHI};
use crate::metrics::RunResult;
use easgd_cluster::collectives::ring_allreduce_sum;
use easgd_cluster::{tags, ClusterConfig, Comm, TimeCategory, VirtualCluster};
use easgd_data::Dataset;
use easgd_hardware::collective::ceil_log2;
use easgd_hardware::net::AlphaBeta;
use easgd_nn::Network;
use std::time::Instant;

/// Topology of the simulated GPU cluster.
#[derive(Clone, Debug)]
pub struct GpuClusterTopology {
    /// Number of nodes.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Intra-node link (PCIe switch).
    pub intra: AlphaBeta,
    /// Inter-node link (InfiniBand / Aries).
    pub inter: AlphaBeta,
}

impl GpuClusterTopology {
    /// The paper's first cluster: 16 nodes × 2 K80 GPUs, FDR InfiniBand.
    pub fn paper_k80_cluster() -> Self {
        Self {
            nodes: 16,
            gpus_per_node: 2,
            intra: AlphaBeta::pcie_gen3_x16(),
            inter: AlphaBeta::fdr_infiniband(),
        }
    }

    /// Total GPU count.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Per-round communication cost of the *hierarchical* schedule for a
    /// `bytes`-sized model: intra-node tree reduce + inter-node ring
    /// allreduce (2·(N−1)/N·bytes·β + 2·(N−1)·α) + intra-node broadcast.
    pub fn hierarchical_cost(&self, bytes: usize) -> f64 {
        let intra_tree = ceil_log2(self.gpus_per_node) as f64 * self.intra.time(bytes);
        let n = self.nodes as f64;
        let ring = if self.nodes > 1 {
            2.0 * (n - 1.0) * self.inter.alpha_s
                + 2.0 * ((n - 1.0) / n) * bytes as f64 * self.inter.beta_s_per_byte
        } else {
            0.0
        };
        2.0 * intra_tree + ring
    }

    /// Per-round cost of the *flat* schedule: a tree allreduce over all
    /// endpoints where every hop may cross the slow fabric.
    pub fn flat_cost(&self, bytes: usize) -> f64 {
        2.0 * ceil_log2(self.total_gpus()) as f64 * self.inter.time(bytes)
    }
}

/// Runs hierarchical Sync EASGD on the simulated topology. Ranks are laid
/// out node-major: rank = node·gpus_per_node + gpu; rank 0 of each node
/// is the node leader; global rank 0 holds the reported center.
///
/// `cfg.workers` is ignored (the topology defines the worker count);
/// `cfg.iterations` bulk-synchronous rounds.
pub fn hierarchical_sync_easgd(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
    topo: &GpuClusterTopology,
) -> RunResult {
    cfg.validate();
    let total = topo.total_gpus();
    assert!(total > 0, "empty topology");
    let shards = train.partition(total);
    let cluster = ClusterConfig::new(total).with_link(topo.inter.clone());
    let intra_tree = ceil_log2(topo.gpus_per_node) as f64 * topo.intra.time(proto.size_bytes());
    let g = topo.gpus_per_node;
    let rule = ElasticRule::from_config(cfg);
    let wall_start = Instant::now();

    let outs = VirtualCluster::run(&cluster, |comm: &mut Comm| {
        let me = comm.rank();
        let node = me / g;
        let is_leader = me.is_multiple_of(g);
        let leader_rank = node * g;
        let mut local = LocalStep::new(proto);
        let mut center = proto.params().as_slice().to_vec();
        let n = center.len();
        let mut rng = worker_rng(cfg.seed, SALT_PHI, me);
        let shard = &shards[me];
        // Round scratch, allocated once: the node-level reduction buffer
        // and the leader's pool-recycled receive buffer.
        let mut node_sum = vec![0.0f32; n];
        let mut wbuf: Vec<f32> = Vec::new();

        for round in 0..cfg.iterations {
            let batch = shard.sample_batch(&mut rng, cfg.batch);
            local.forward_backward(&batch);
            comm.charge(TimeCategory::ForwardBackward, 6.0e-3);

            // ---- level 1: intra-node reduce of local weights to leader.
            let tag = tags::hier_round(round);
            if is_leader {
                node_sum.copy_from_slice(local.params());
                for member in leader_rank + 1..leader_rank + g {
                    comm.recv_into(member, tag, TimeCategory::GpuGpuParam, &mut wbuf);
                    for (a, b) in node_sum.iter_mut().zip(&wbuf) {
                        *a += b;
                    }
                }
                // Tree depth, not member count, prices the reduce.
                comm.charge(TimeCategory::GpuGpuParam, intra_tree);
            } else {
                comm.send_costed(leader_rank, tag, local.params(), 0.0, TimeCategory::Other);
                node_sum.fill(0.0);
            }

            // ---- level 2: ring-allreduce over the fabric. Implemented
            // as a communicator-wide ring with non-leaders contributing
            // zeros: per-rank bandwidth (2·n·β) matches the leaders-only
            // ring exactly; the latency term is conservatively larger
            // (2(total−1)·α instead of 2(nodes−1)·α).
            ring_allreduce_sum(comm, &mut node_sum, TimeCategory::GpuGpuParam);

            // ---- Equation (2) on the identical global sum, everywhere.
            rule.center_dilution(&mut center, &node_sum, total);
            // ---- level 1 down: leader broadcasts the center in-node.
            if is_leader {
                comm.charge(TimeCategory::GpuGpuParam, intra_tree);
            }
            // ---- Equation (1) locally.
            local.elastic_step_against(&rule, &center);
            comm.charge(TimeCategory::GpuUpdate, 0.02e-3);
        }

        let last_loss = local.last_loss();
        let loss_trace = local.take_loss_trace();
        if me == 0 {
            RankOutcome::Center {
                center,
                report: comm.report(),
                trace: Vec::new(),
                loss_trace,
            }
        } else {
            RankOutcome::Worker {
                report: Some(comm.report()),
                last_loss,
                loss_trace,
            }
        }
    });

    let wall = wall_start.elapsed().as_secs_f64();
    assemble_sim(
        "Hierarchical Sync EASGD",
        proto,
        test,
        cfg.iterations,
        wall,
        outs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use easgd_data::SyntheticSpec;
    use easgd_nn::models::lenet_tiny;

    fn setup() -> (Network, Dataset, Dataset) {
        let task = SyntheticSpec::mnist_small().task(161);
        let (train, test) = task.train_test(600, 200, 162);
        (lenet_tiny(163), train, test)
    }

    fn small_topo(nodes: usize, gpus: usize) -> GpuClusterTopology {
        GpuClusterTopology {
            nodes,
            gpus_per_node: gpus,
            intra: AlphaBeta::pcie_gen3_x16(),
            inter: AlphaBeta::fdr_infiniband(),
        }
    }

    #[test]
    fn paper_topology_dimensions() {
        let t = GpuClusterTopology::paper_k80_cluster();
        assert_eq!(t.total_gpus(), 32);
    }

    #[test]
    fn hierarchy_beats_flat_for_large_models() {
        // One fabric message per node instead of log(total) fabric hops.
        let t = GpuClusterTopology::paper_k80_cluster();
        let vgg = 575_000_000;
        assert!(t.hierarchical_cost(vgg) < t.flat_cost(vgg));
    }

    #[test]
    fn trains_on_2x2_topology() {
        let (net, train, test) = setup();
        let cfg = TrainConfig::figure6(50).with_seed(171);
        let r = hierarchical_sync_easgd(&net, &train, &test, &cfg, &small_topo(2, 2));
        assert!(r.accuracy > 0.3, "acc = {}", r.accuracy);
        assert!(r.sim_seconds.unwrap() > 0.0);
        let b = r.breakdown.unwrap();
        assert!(b.get(TimeCategory::GpuGpuParam) > 0.0);
    }

    #[test]
    fn single_node_degenerates_to_intra_only() {
        let (net, train, test) = setup();
        let cfg = TrainConfig::figure6(30).with_seed(181);
        let r = hierarchical_sync_easgd(&net, &train, &test, &cfg, &small_topo(1, 4));
        assert!(r.accuracy > 0.3, "acc = {}", r.accuracy);
    }

    #[test]
    fn deterministic_given_seed() {
        let (net, train, test) = setup();
        let cfg = TrainConfig::figure6(10).with_seed(191);
        let topo = small_topo(2, 2);
        let a = hierarchical_sync_easgd(&net, &train, &test, &cfg, &topo);
        let b = hierarchical_sync_easgd(&net, &train, &test, &cfg, &topo);
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.sim_seconds, b.sim_seconds);
        assert_eq!(a.center_hash, b.center_hash);
    }
}
