//! Pinned service-time model for deterministic latency accounting.

/// Modeled wall time of one dispatched inference batch on a replica
/// server: `step(B) = fixed_us + B · per_sample_us`.
///
/// This is the serving twin of the paper's α-β communication model
/// (§5.2): `fixed_us` is the per-dispatch latency term α — kernel
/// launches (one per layer on the paper's GPU-era stack), batcher
/// hand-off, response framing — paid once per batch regardless of size;
/// `per_sample_us` is the bandwidth-like term β, the per-sample forward
/// flops divided by the device's sustained flop rate (derivable from
/// `easgd-hardware`'s `ComputeModel`). Micro-batching wins exactly when
/// α ≳ β: QPS at cap B is `B / step(B)`, so
/// `QPS(8)/QPS(1) = 8·(α+β)/(α+8β) ≥ 3  ⇔  α ≥ 3.2·β`.
///
/// The model is *pinned* in `BENCH_serve.json` next to the numbers
/// computed under it, so every percentile in the file is reproducible
/// bit-for-bit from the seeds alone.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceModel {
    /// Fixed per-dispatch cost α in microseconds.
    pub fixed_us: f64,
    /// Per-sample forward cost β in microseconds.
    pub per_sample_us: f64,
}

impl ServiceModel {
    /// A model with the given α (µs/dispatch) and β (µs/sample).
    ///
    /// # Panics
    /// Panics unless `fixed_us ≥ 0` and `per_sample_us > 0`.
    pub fn new(fixed_us: f64, per_sample_us: f64) -> Self {
        assert!(fixed_us >= 0.0, "negative fixed cost");
        assert!(per_sample_us > 0.0, "per-sample cost must be positive");
        Self {
            fixed_us,
            per_sample_us,
        }
    }

    /// Modeled service time of a batch of `batch` samples, in µs.
    ///
    /// # Panics
    /// Panics if `batch == 0` (ragged dispatch never runs empty batches).
    pub fn step_us(&self, batch: usize) -> f64 {
        assert!(batch > 0, "empty batch has no service time");
        self.fixed_us + batch as f64 * self.per_sample_us
    }

    /// Saturated single-server throughput at batch size `batch`,
    /// in requests per second: `B / step(B)`.
    pub fn capacity_qps(&self, batch: usize) -> f64 {
        batch as f64 * 1e6 / self.step_us(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_is_affine_in_batch() {
        let m = ServiceModel::new(80.0, 5.0);
        assert_eq!(m.step_us(1), 85.0);
        assert_eq!(m.step_us(8), 120.0);
    }

    #[test]
    fn batching_amortizes_fixed_cost() {
        let m = ServiceModel::new(80.0, 5.0);
        let ratio = m.capacity_qps(8) / m.capacity_qps(1);
        assert!(ratio > 3.0, "α/β = 16 should batch well, got {ratio}");
        // With no fixed cost there is nothing to amortize.
        let flat = ServiceModel::new(0.0, 5.0);
        let r = flat.capacity_qps(8) / flat.capacity_qps(1);
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn zero_batch_rejected() {
        let _ = ServiceModel::new(1.0, 1.0).step_us(0);
    }
}
