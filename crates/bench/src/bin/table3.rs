//! Table 3 / Figure 11: breakdown of time for the EASGD variants on the
//! simulated 4-GPU node, and the §6.1 speedup chain.
//!
//! ```sh
//! cargo run --release -p easgd-bench --bin table3
//! ```
//!
//! Matching the paper's protocol: the round-robin variants get 5× the
//! per-iteration budget of the synchronous ones (5000 vs 1000 in the
//! paper) because only one GPU works per round-robin interaction; all
//! runs must land at the same accuracy for the comparison to be fair
//! (§2.4).

use easgd::metrics::RunResult;
use easgd::{original_easgd_sim, sync_easgd_sim, OriginalMode, SimCosts, SyncVariant, TrainConfig};
use easgd_bench::figure_task;
use easgd_cluster::TimeCategory;

fn main() {
    let (net, train, test) = figure_task();
    let costs = SimCosts::mnist_lenet_4gpu();
    // 4 workers: sync methods run 250 rounds (1000 gradient evaluations),
    // round-robin runs 312 per worker (1250 interactions ≈ paper's 5000
    // vs 1000 ratio).
    let sync_cfg = TrainConfig::figure6(250);
    let rr_cfg = sync_cfg.clone().with_iterations(312);

    println!("Table 3: Breakdown of time for EASGD variants (simulated 4-GPU node)");
    println!(
        "{:<16} {:>9} {:>7} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7}",
        "method",
        "accuracy",
        "iters",
        "time",
        "g-g par",
        "c-g dat",
        "c-g par",
        "fwd/bwd",
        "gpu upd",
        "cpu upd",
        "comm"
    );

    let print_named = |name: &str, r: &RunResult, iters: usize| {
        let b = r.breakdown.as_ref().unwrap();
        print!(
            "{:<16} {:>9.3} {:>7} {:>8.2}s",
            name,
            r.accuracy,
            iters,
            r.sim_seconds.unwrap()
        );
        for c in TimeCategory::ALL.iter().take(6) {
            print!(" {:>7.0}%", 100.0 * b.get(*c) / b.total());
        }
        println!(" {:>6.0}%", b.comm_ratio() * 100.0);
    };

    let ser = original_easgd_sim(
        &net,
        &train,
        &test,
        &rr_cfg,
        &costs,
        OriginalMode::Serialized,
    );
    print_named("Original EASGD*", &ser, rr_cfg.iterations * 4);
    let pip = original_easgd_sim(
        &net,
        &train,
        &test,
        &rr_cfg,
        &costs,
        OriginalMode::Pipelined,
    );
    print_named("Original EASGD", &pip, rr_cfg.iterations * 4);
    let e1 = sync_easgd_sim(
        &net,
        &train,
        &test,
        &sync_cfg,
        &costs,
        SyncVariant::Easgd1,
        0,
    );
    print_named("Sync EASGD1", &e1, sync_cfg.iterations);
    let e2 = sync_easgd_sim(
        &net,
        &train,
        &test,
        &sync_cfg,
        &costs,
        SyncVariant::Easgd2,
        0,
    );
    print_named("Sync EASGD2", &e2, sync_cfg.iterations);
    let e3 = sync_easgd_sim(
        &net,
        &train,
        &test,
        &sync_cfg,
        &costs,
        SyncVariant::Easgd3,
        0,
    );
    print_named("Sync EASGD3", &e3, sync_cfg.iterations);

    let t = |r: &RunResult| r.sim_seconds.unwrap();
    println!("\nSpeedup chain (§6.1):");
    println!(
        "  Sync EASGD1 over Original EASGD: {:.1}x   (paper: 3.7x)",
        t(&pip) / t(&e1)
    );
    println!(
        "  Sync EASGD2 over Sync EASGD1:    {:.2}x   (paper: 1.3x)",
        t(&e1) / t(&e2)
    );
    println!(
        "  Sync EASGD3 over Sync EASGD2:    {:.2}x   (paper: 1.1x)",
        t(&e2) / t(&e3)
    );
    println!(
        "  Sync EASGD3 over Original EASGD: {:.1}x   (paper: 5.3x)",
        t(&pip) / t(&e3)
    );
    println!(
        "  comm ratio: {:.0}% -> {:.0}%          (paper: 87% -> 14%)",
        pip.breakdown.as_ref().unwrap().comm_ratio() * 100.0,
        e3.breakdown.as_ref().unwrap().comm_ratio() * 100.0
    );
}
