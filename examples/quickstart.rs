//! Quickstart: train a small CNN on a synthetic MNIST-like task with the
//! paper's fastest method (Sync EASGD) and print the outcome.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use knl_easgd::prelude::*;

fn main() {
    // 1. A task: class-conditional synthetic images (stands in for MNIST
    //    in this offline reproduction; see DESIGN.md §2).
    let spec = SyntheticSpec::mnist_small();
    let task = spec.task(42);
    let (train, test) = task.train_test(2_000, 500, 43);
    println!(
        "dataset: {} train / {} test samples of {:?}, {} classes",
        train.len(),
        test.len(),
        train.shape,
        train.classes
    );

    // 2. A model: LeNet-shaped CNN (conv → pool → dense), parameters in
    //    one packed arena (§5.2 of the paper).
    let net = lenet_tiny(7);
    println!(
        "model: {} parameters ({} bytes packed)",
        net.num_params(),
        net.size_bytes()
    );

    // 3. Train with Sync EASGD on 4 workers — the method the paper finds
    //    fastest-or-tied while staying deterministic (§8).
    let cfg = TrainConfig::figure6(400);
    let result = sync_easgd_shared(&net, &train, &test, &cfg);
    println!(
        "{}: {} rounds x {} workers, batch {}",
        result.method, cfg.iterations, cfg.workers, cfg.batch
    );
    println!(
        "  test accuracy {:.1}%  (final loss {:.4})  in {:.2}s wall",
        result.accuracy * 100.0,
        result.final_loss,
        result.wall_seconds
    );

    // 4. Same budget with the round-robin baseline the paper improves on.
    let baseline = original_easgd_turns(&net, &train, &test, &cfg);
    println!(
        "{}: test accuracy {:.1}% in {:.2}s wall",
        baseline.method,
        baseline.accuracy * 100.0,
        baseline.wall_seconds
    );
}
