//! # easgd — the SC '17 algorithm family
//!
//! Rust implementation of the distributed training algorithms from
//! *“Scaling Deep Learning on GPU and Knights Landing clusters”*
//! (You, Buluç, Demmel, SC '17), together with the baselines the paper
//! compares against. The method lineage (Figure 9):
//!
//! ```text
//!                 round-robin            FCFS                lock-free
//! Original EASGD ───────────► Async EASGD ─────► Hogwild EASGD
//!      │   tree reduce              │ momentum
//!      └────────► Sync EASGD   Async MEASGD
//!
//! Async SGD ──momentum──► Async MSGD        Hogwild SGD   (existing)
//! ```
//!
//! Two execution substrates:
//!
//! * **Shared-memory, wall-clock** ([`shared`], [`hogwild`]) — the
//!   asynchronous family (Async SGD/MSGD/EASGD/MEASGD, Hogwild
//!   SGD/EASGD, turn-based Original EASGD, barrier-based Sync EASGD) run
//!   on real threads against a real clock, because lock-freedom and FCFS
//!   vs round-robin ordering are *concurrency* phenomena (Figures 6, 8).
//! * **Simulated cluster** ([`sync`], [`original`]) — the deterministic
//!   multi-GPU schedules (Original EASGD*/pipelined, Sync EASGD1/2/3)
//!   run on `easgd-cluster`'s virtual ranks with α-β-priced
//!   communication, reproducing the Table 3 / Figure 11 time breakdowns
//!   and the Figure 13 scaling curves.
//!
//! Plus the two co-design studies:
//!
//! * [`knl_partition`] — the §6.2 divide-and-conquer chip partitioning
//!   (Figure 12), gated by the MCDRAM capacity rule.
//! * [`weak_scaling`] — the Table 4 weak-scaling model for
//!   GoogLeNet/VGG on up to 4352 KNL cores.

pub mod async_sim;
pub mod config;
pub mod convex;
pub mod dispatch;
pub mod engine;
pub mod hierarchical;
pub mod hogwild;
pub mod knl_partition;
pub mod lineage;
pub mod metrics;
pub mod model_parallel;
pub mod original;
pub mod partitioned;
pub mod schedule;
pub mod serial;
pub mod shared;
pub mod simcost;
pub mod straggler;
pub mod sync;
pub mod weak_scaling;

pub use async_sim::{async_server_sim, AsyncVariant};
pub use config::TrainConfig;
pub use convex::QuadraticProblem;
pub use dispatch::{run_comparison, run_method};
pub use engine::{trainer, ElasticRule, LocalStep, Trainer, WorkerShard};
pub use hierarchical::{hierarchical_sync_easgd, GpuClusterTopology};
pub use hogwild::{hogwild_easgd, hogwild_sgd};
pub use knl_partition::{knl_partition_run, KnlPartitionOutcome};
pub use lineage::{lineage, LineageEdge, MethodId};
pub use metrics::{RunResult, TracePoint};
pub use model_parallel::model_parallel_speedup;
pub use original::{original_easgd_sim, OriginalMode};
pub use partitioned::{partitioned_hogwild_easgd, partitioned_sync_easgd};
pub use schedule::LrSchedule;
pub use serial::{serial_sgd, SerialConfig};
pub use shared::{
    async_easgd, async_measgd, async_msgd, async_sgd, original_easgd_turns, sync_easgd_shared,
};
pub use simcost::SimCosts;
pub use straggler::{straggler_study, StragglerConfig, StragglerOutcome};
pub use sync::{sync_easgd_sim, sync_easgd_sim_with, sync_sgd_sim, SyncExchange, SyncVariant};
pub use weak_scaling::{WeakScalingModel, WeakScalingRow};
