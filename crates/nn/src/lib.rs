//! # easgd-nn
//!
//! Convolutional-neural-network substrate for the `knl-easgd` reproduction
//! of *“Scaling Deep Learning on GPU and Knights Landing clusters”*
//! (SC '17).
//!
//! The paper's distributed algorithms (EASGD variants) are *inter-device*
//! schedules; every worker still runs real forward/backward propagation
//! (§2.2). This crate provides that per-worker compute path:
//!
//! * [`layer`] — the [`layer::Layer`] trait plus concrete layers:
//!   [`dense::Dense`], [`conv::Conv2d`], pooling,
//!   activations, dropout, local response normalization.
//! * [`loss`] — softmax cross-entropy with analytic gradient.
//! * [`network`] — [`network::Network`]: a layer stack whose
//!   parameters live in a single packed `ParamArena` (the §5.2
//!   single-layer-communication layout).
//! * [`models`] — the runnable model zoo (LeNet for MNIST, AlexNet-style
//!   for CIFAR, generic MLPs) at both paper scale and `tiny` scale for
//!   fast experiments.
//! * [`spec`] — full-size cost specifications (parameter and flop counts
//!   per layer) of LeNet, AlexNet, GoogLeNet and VGG-16/19, used by the
//!   weak-scaling and communication models (Table 4, Figure 10).
//! * [`layout`] — packed vs per-layer communication schedules (§5.2).
//! * [`gradcheck`] — finite-difference gradient verification used by the
//!   test-suite to certify every layer's backward pass.

pub mod activations;
pub mod batchnorm;
pub mod checkpoint;
pub mod conv;
pub mod dense;
pub mod dropout;
pub mod eval;
pub mod flatten;
pub mod gradcheck;
pub mod inception;
pub mod layer;
pub mod layout;
pub mod loss;
pub mod lrn;
pub mod models;
pub mod network;
pub mod pool;
pub mod spec;

pub use activations::{Relu, Sigmoid, Tanh};
pub use batchnorm::BatchNorm;
pub use checkpoint::{load_network, save_network};
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use eval::{evaluate_topk, ConfusionMatrix, TopKAccuracy};
pub use flatten::Flatten;
pub use inception::{Inception, InceptionConfig};
pub use layer::{Init, Layer, ParamSpec};
pub use layout::{CommSchedule, LayoutKind};
pub use loss::SoftmaxCrossEntropy;
pub use lrn::LocalResponseNorm;
pub use network::{Network, NetworkBuilder, StepStats};
pub use pool::{AvgPool2d, MaxPool2d};
pub use spec::{LayerCost, ModelSpec};
