// xtask: allow(wall-clock) — wall-clock trainer/driver: measures real elapsed time by design.
//! Single-node SGD with schedules and weight decay — the baseline every
//! distributed method is measured against, and the §7.2 batch-size
//! study's engine.

use crate::engine::{LocalStep, RunAssembler, TraceRecorder};
use crate::metrics::RunResult;
use crate::schedule::LrSchedule;
use easgd_data::Dataset;
use easgd_nn::Network;
use easgd_tensor::Rng;
use std::time::Instant;

/// Configuration of a serial (single-worker) training run.
#[derive(Clone, Debug)]
pub struct SerialConfig {
    /// Mini-batch size.
    pub batch: usize,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// Momentum `µ` (0 disables).
    pub mu: f32,
    /// L2 weight decay `λ`.
    pub weight_decay: f32,
    /// Iteration budget.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
    /// Record test accuracy every this many iterations (0 = final only).
    pub trace_every: usize,
}

impl SerialConfig {
    /// Plain SGD at a constant rate.
    pub fn constant(eta: f32, batch: usize, iterations: usize, seed: u64) -> Self {
        Self {
            batch,
            schedule: LrSchedule::Constant { base: eta },
            mu: 0.0,
            weight_decay: 0.0,
            iterations,
            seed,
            trace_every: 0,
        }
    }
}

/// Trains a replica of `proto` on `train`, evaluating on `test`.
pub fn serial_sgd(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &SerialConfig,
) -> RunResult {
    assert!(cfg.batch > 0 && cfg.iterations > 0, "invalid serial config");
    let mut local = LocalStep::new(proto);
    let mut rng = Rng::new(cfg.seed);
    let mut recorder = TraceRecorder::new(cfg.trace_every);
    let start = Instant::now();
    for t in 0..cfg.iterations {
        let batch = train.sample_batch(&mut rng, cfg.batch);
        local.forward_backward(&batch);
        local.decay_grad(cfg.weight_decay);
        let eta = cfg.schedule.at(t);
        if cfg.mu > 0.0 {
            local.momentum_step(eta, cfg.mu);
        } else {
            local.sgd_step(eta);
        }
        if recorder.due(t) {
            let secs = start.elapsed().as_secs_f64();
            recorder.record(t, secs, proto, local.params(), test);
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let last_loss = local.last_loss();
    let loss_trace = local.take_loss_trace();
    RunAssembler::new("Serial SGD", proto, test, cfg.iterations)
        .wall(wall)
        .trace(recorder.into_points())
        .loss_trace(loss_trace)
        .final_loss(last_loss)
        .finish(local.params())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::apply_weight_decay;
    use easgd_data::SyntheticSpec;
    use easgd_nn::models::lenet_tiny;
    use easgd_tensor::ops::sgd_update;

    fn setup() -> (Network, Dataset, Dataset) {
        let task = SyntheticSpec::mnist_small().task(111);
        let (train, test) = task.train_test(600, 200, 112);
        (lenet_tiny(113), train, test)
    }

    #[test]
    fn learns_with_constant_rate() {
        let (net, train, test) = setup();
        let r = serial_sgd(
            &net,
            &train,
            &test,
            &SerialConfig::constant(0.1, 32, 300, 1),
        );
        assert!(r.accuracy > 0.8, "acc {}", r.accuracy);
    }

    #[test]
    fn momentum_accelerates_early_progress() {
        let (net, train, test) = setup();
        let plain = serial_sgd(
            &net,
            &train,
            &test,
            &SerialConfig::constant(0.02, 32, 120, 2),
        );
        let mut mcfg = SerialConfig::constant(0.02, 32, 120, 2);
        mcfg.mu = 0.9;
        let with_m = serial_sgd(&net, &train, &test, &mcfg);
        assert!(
            with_m.accuracy >= plain.accuracy - 0.02,
            "momentum {} vs plain {}",
            with_m.accuracy,
            plain.accuracy
        );
    }

    #[test]
    fn weight_decay_shrinks_weight_norm() {
        let (net, train, test) = setup();
        let run = |wd: f32| {
            let mut cfg = SerialConfig::constant(0.05, 32, 150, 3);
            cfg.weight_decay = wd;
            // Re-train and measure the final weight norm via a probe run.
            let mut probe = net.clone();
            let mut rng = Rng::new(cfg.seed);
            let n = probe.num_params();
            let mut grad = vec![0.0f32; n];
            for t in 0..cfg.iterations {
                let batch = train.sample_batch(&mut rng, cfg.batch);
                let _ = probe.forward_backward(&batch.images, &batch.labels);
                grad.copy_from_slice(probe.grads().as_slice());
                apply_weight_decay(cfg.weight_decay, probe.params().as_slice(), &mut grad);
                sgd_update(cfg.schedule.at(t), probe.params_mut().as_mut_slice(), &grad);
            }
            easgd_tensor::ops::norm_sq(probe.params().as_slice())
        };
        let _ = test; // silence
        let free = run(0.0);
        let decayed = run(1e-2);
        assert!(decayed < free, "decay {decayed} !< free {free}");
    }

    #[test]
    fn trace_records_progress() {
        let (net, train, test) = setup();
        let mut cfg = SerialConfig::constant(0.1, 32, 90, 4);
        cfg.trace_every = 30;
        let r = serial_sgd(&net, &train, &test, &cfg);
        assert_eq!(r.trace.len(), 3);
        assert!(r.trace[2].accuracy >= r.trace[0].accuracy - 0.1);
        assert_eq!(r.loss_trace.len(), 90);
        assert_eq!(r.final_loss, r.loss_trace[89]);
    }

    #[test]
    fn poly_schedule_trains() {
        let (net, train, test) = setup();
        let cfg = SerialConfig {
            batch: 32,
            schedule: LrSchedule::Poly {
                base: 0.15,
                power: 1.0,
                max_iter: 300,
            },
            mu: 0.0,
            weight_decay: 0.0,
            iterations: 300,
            seed: 5,
            trace_every: 0,
        };
        let r = serial_sgd(&net, &train, &test, &cfg);
        assert!(r.accuracy > 0.8, "acc {}", r.accuracy);
    }
}
