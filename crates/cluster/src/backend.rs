//! Execution backends hosting the ranks of a
//! [`VirtualCluster`](crate::cluster::VirtualCluster).
//!
//! Everything in the cluster crate that assumes "rank = OS thread" lives
//! behind this seam: the blocking channel receive, `std::thread::scope`,
//! and the wake-up protocol between a sender and a blocked receiver.
//! Two backends implement it:
//!
//! * [`ClusterBackend::Threads`] — one OS thread per rank, preemptive,
//!   blocking on channel/condvar. The seed behavior; real parallelism,
//!   practical up to ~tens of ranks.
//! * [`ClusterBackend::Events`] — a single-token discrete-event engine.
//!   Every rank still runs its real trainer code on its own (small,
//!   lazily-committed) stack, but exactly **one** rank is runnable at a
//!   time: a rank that must wait for a message or a collective parks its
//!   fiber and hands the run token to the runnable rank with the
//!   smallest `(simulated time, rank)` key in the event queue. Thousands
//!   of ranks (the paper's 4352-core weak-scaling sweeps and beyond)
//!   share one process with no lock contention and a deterministic
//!   schedule.
//!
//! The dispatch order makes the event backend *more* faithful to the α-β
//! model than threads: "first come" in `recv_any` is decided by
//! simulated arrival order, not by which OS thread the kernel happened
//! to run first. For deterministic trainers the two backends produce
//! bit-identical results and simulated times (see
//! `tests/backend_parity.rs`); for FCFS-racy trainers (the async server
//! at >1 worker) the event backend is deterministic where threads are
//! not.
//!
//! Single-token scheduling is what makes the engine simple and safe: all
//! scheduler transitions are serialized by token ownership, so there is
//! no lost-wakeup window — whenever a fiber runs, every other live fiber
//! is parked at a stable wait point.

use crate::channel::Receiver;
use crate::cluster::Shared;
use crate::comm::{Comm, Message};
use std::cell::Cell;
use std::collections::BinaryHeap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Default per-fiber stack size for the event backend (2 MiB — the same
/// order as `std::thread`'s default; pages are committed lazily, so 8192
/// fibers cost virtual address space, not resident memory).
pub const DEFAULT_EVENT_STACK_BYTES: usize = 2 * 1024 * 1024;

/// Which execution substrate hosts the ranks of a virtual cluster.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ClusterBackend {
    /// One OS thread per rank (preemptive, blocking channels).
    Threads,
    /// Single-threaded-at-a-time discrete-event engine over parked
    /// fibers; scales to thousands of ranks in one process.
    Events,
}

thread_local! {
    /// The backend `ClusterConfig::new` defaults to on this thread.
    static DEFAULT_BACKEND: Cell<ClusterBackend> = const { Cell::new(ClusterBackend::Threads) };
}

impl ClusterBackend {
    /// The backend new configs on this thread currently default to.
    pub fn default_backend() -> ClusterBackend {
        DEFAULT_BACKEND.with(Cell::get)
    }

    /// Runs `f` with `self` as the default backend for every
    /// `ClusterConfig::new` on this thread — the hook that lets trainer
    /// code which builds its cluster configs internally run unmodified
    /// on either backend. The previous default is restored on exit
    /// (including by panic).
    pub fn with_default<R>(self, f: impl FnOnce() -> R) -> R {
        struct Restore(ClusterBackend);
        impl Drop for Restore {
            fn drop(&mut self) {
                DEFAULT_BACKEND.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(DEFAULT_BACKEND.with(|c| c.replace(self)));
        f()
    }

    pub(crate) fn executor(self, ranks: usize) -> Executor {
        match self {
            ClusterBackend::Threads => Executor::Threads,
            ClusterBackend::Events => Executor::Events(Arc::new(EventSched::new(ranks))),
        }
    }
}

/// The per-run face of the backend, stored in [`Shared`]: how a rank
/// blocks for traffic and how a sender wakes a blocked receiver.
pub(crate) enum Executor {
    Threads,
    Events(Arc<EventSched>),
}

impl Executor {
    /// Called by `Comm` when no buffered message matches: blocks until
    /// more traffic *may* be available. Threads: one blocking channel
    /// receive (returns the message). Events: parks this rank's fiber
    /// until a sender signals it, then returns `None` — the caller
    /// re-drains its channel and re-scans.
    pub(crate) fn wait_message(
        &self,
        rank: usize,
        rx: &Receiver<Message>,
        now: f64,
    ) -> Option<Message> {
        match self {
            Executor::Threads => Some(rx.recv().expect("all senders hung up")),
            Executor::Events(sched) => {
                sched.park(rank, now);
                None
            }
        }
    }

    /// Called by `Comm` right after handing a message to `to`'s channel.
    /// A no-op on threads (the channel's own condvar wakes the
    /// receiver); on events it marks a parked receiver runnable.
    pub(crate) fn notify_delivery(&self, to: usize) {
        if let Executor::Events(sched) = self {
            sched.signal(to);
        }
    }
}

/// A runnable rank in the event queue, keyed by the simulated time at
/// which it blocked. `Ord` is reversed so `BinaryHeap` (a max-heap)
/// pops the **smallest** `(time, rank)` first; the rank tiebreak makes
/// the order total, hence deterministic.
struct Runnable {
    time: f64,
    rank: usize,
}

impl PartialEq for Runnable {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Runnable {}
impl PartialOrd for Runnable {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Runnable {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.rank.cmp(&self.rank))
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum RankState {
    /// In the event queue, waiting for the run token.
    Ready,
    /// Holds the run token (at most one rank at any time).
    Running,
    /// Parked: waiting for a message or a collective.
    Blocked,
    /// Returned from its trainer closure.
    Done,
}

struct SchedState {
    status: Vec<RankState>,
    /// Simulated time at which each rank last blocked — its resume
    /// priority in the event queue.
    block_time: Vec<f64>,
    queue: BinaryHeap<Runnable>,
    done: usize,
    /// A rank panicked or the engine detected deadlock: every parked
    /// fiber must wake and unwind so the host's joins can complete.
    aborted: bool,
}

/// The single-token cooperative scheduler behind
/// [`ClusterBackend::Events`].
pub(crate) struct EventSched {
    state: Mutex<SchedState>,
    /// One condvar per rank so dispatch wakes exactly the chosen fiber
    /// (a shared condvar would thundering-herd all P fibers per event).
    wake: Vec<Condvar>,
}

impl EventSched {
    pub(crate) fn new(ranks: usize) -> Self {
        let mut queue = BinaryHeap::with_capacity(ranks);
        for rank in 0..ranks {
            queue.push(Runnable { time: 0.0, rank });
        }
        Self {
            state: Mutex::new(SchedState {
                status: vec![RankState::Ready; ranks],
                block_time: vec![0.0; ranks],
                queue,
                done: 0,
                aborted: false,
            }),
            wake: (0..ranks).map(|_| Condvar::new()).collect(),
        }
    }

    /// Locks the scheduler, recovering from poisoning (the panicking
    /// fiber's own panic is what surfaces to the caller, via the join).
    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Hands the run token to the runnable rank with the smallest
    /// `(block time, rank)`. Called only while **no** rank is running
    /// (the caller just parked or finished). An empty queue with live
    /// ranks left is a deadlock: abort the cluster and panic in the
    /// detecting fiber.
    fn dispatch(&self, st: &mut SchedState) {
        if let Some(next) = st.queue.pop() {
            st.status[next.rank] = RankState::Running;
            self.wake[next.rank].notify_all();
        } else if st.done < st.status.len() && !st.aborted {
            let blocked: Vec<usize> = st
                .status
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == RankState::Blocked)
                .map(|(r, _)| r)
                .collect();
            st.aborted = true;
            for cv in &self.wake {
                cv.notify_all();
            }
            panic!(
                "event backend deadlock: no rank is runnable; \
                 ranks {blocked:?} are blocked waiting for traffic that will never arrive"
            );
        }
    }

    /// Fiber prologue: blocks until the scheduler hands this rank the
    /// run token for the first time.
    pub(crate) fn wait_turn(&self, rank: usize) {
        let mut st = self.lock();
        while st.status[rank] != RankState::Running {
            if st.aborted {
                panic!("event cluster aborted (a sibling rank panicked or deadlocked)");
            }
            st = self.wake[rank].wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Parks the calling rank at simulated time `now`, dispatches the
    /// next runnable rank, and blocks until a sender signals this rank
    /// and the scheduler hands the token back.
    pub(crate) fn park(&self, rank: usize, now: f64) {
        let mut st = self.lock();
        if st.aborted {
            panic!("event cluster aborted (a sibling rank panicked or deadlocked)");
        }
        st.status[rank] = RankState::Blocked;
        st.block_time[rank] = now;
        self.dispatch(&mut st);
        while st.status[rank] != RankState::Running {
            if st.aborted {
                panic!("event cluster aborted (a sibling rank panicked or deadlocked)");
            }
            st = self.wake[rank].wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Marks a parked rank runnable (no-op for ranks that are ready,
    /// running, or done — a rank never parks on itself, and spurious
    /// signals are absorbed by the re-check loops at the wait sites).
    /// The caller keeps the run token; the signaled rank resumes at its
    /// own recorded block time once dispatched.
    pub(crate) fn signal(&self, rank: usize) {
        let mut st = self.lock();
        if st.status[rank] == RankState::Blocked {
            st.status[rank] = RankState::Ready;
            let time = st.block_time[rank];
            st.queue.push(Runnable { time, rank });
        }
    }

    /// Fiber epilogue: releases the run token for good.
    pub(crate) fn finish(&self, rank: usize) {
        let mut st = self.lock();
        st.status[rank] = RankState::Done;
        st.done += 1;
        if st.done < st.status.len() {
            self.dispatch(&mut st);
        }
    }

    /// Wakes every parked fiber into a panic so the host's joins
    /// complete (called when any fiber's trainer closure panicked).
    pub(crate) fn abort(&self) {
        let mut st = self.lock();
        st.aborted = true;
        for cv in &self.wake {
            cv.notify_all();
        }
    }

    /// Seeds execution: every rank starts ready at t = 0; rank 0 runs
    /// first.
    fn start(&self) {
        let mut st = self.lock();
        self.dispatch(&mut st);
    }
}

/// Hosts one cluster run on the backend recorded in `shared.exec` and
/// returns the per-rank results in rank order.
pub(crate) fn host<R, F>(shared: Arc<Shared>, receivers: Vec<Receiver<Message>>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    let sched = match &shared.exec {
        Executor::Threads => None,
        Executor::Events(s) => Some(Arc::clone(s)),
    };
    match sched {
        None => host_threads(shared, receivers, &f),
        Some(sched) => host_events(sched, shared, receivers, &f),
    }
}

/// The seed hosting model: one preemptive OS thread per rank.
fn host_threads<R, F>(shared: Arc<Shared>, receivers: Vec<Receiver<Message>>, f: &F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(receivers.len());
        for (rank, rx) in receivers.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            handles.push(s.spawn(move || {
                let mut comm = Comm::new(rank, rx, shared);
                f(&mut comm)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

/// Event hosting: each rank is a fiber — an OS thread with a small
/// lazily-committed stack that holds the run token while it executes and
/// parks in [`EventSched`] whenever it must wait. A panicking fiber
/// aborts the cluster (every parked sibling wakes and unwinds) so the
/// joins below always complete; the first join surfaces the panic as
/// "rank panicked", exactly like the thread backend.
fn host_events<R, F>(
    sched: Arc<EventSched>,
    shared: Arc<Shared>,
    receivers: Vec<Receiver<Message>>,
    f: &F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    let stack = shared.config.event_stack_bytes;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(receivers.len());
        for (rank, rx) in receivers.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let sched = Arc::clone(&sched);
            let handle = std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(stack)
                .spawn_scoped(s, move || {
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        sched.wait_turn(rank);
                        let mut comm = Comm::new(rank, rx, shared);
                        f(&mut comm)
                    }));
                    match outcome {
                        Ok(v) => {
                            sched.finish(rank);
                            v
                        }
                        Err(payload) => {
                            sched.abort();
                            std::panic::resume_unwind(payload)
                        }
                    }
                })
                .expect("failed to spawn event-backend fiber");
            handles.push(handle);
        }
        sched.start();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TimeCategory;
    use crate::cluster::{ClusterConfig, VirtualCluster};

    fn events(p: usize) -> ClusterConfig {
        ClusterConfig::new(p).with_backend(ClusterBackend::Events)
    }

    #[test]
    fn event_backend_runs_basic_p2p() {
        let out = VirtualCluster::run(&events(2), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, &[1.0, 2.0], TimeCategory::Other);
                comm.recv(1, 6, TimeCategory::Other)
            } else {
                let got = comm.recv(0, 5, TimeCategory::Other);
                let doubled: Vec<f32> = got.iter().map(|x| x * 2.0).collect();
                comm.send(0, 6, &doubled, TimeCategory::Other);
                got
            }
        });
        assert_eq!(out[0], vec![2.0, 4.0]);
        assert_eq!(out[1], vec![1.0, 2.0]);
    }

    #[test]
    fn event_backend_collectives_match_thread_backend() {
        let body = |comm: &mut Comm| {
            comm.charge(TimeCategory::ForwardBackward, comm.rank() as f64 * 0.5);
            let x = vec![comm.rank() as f32, 1.0];
            let sum = comm.allreduce_sum(&x, TimeCategory::GpuGpuParam);
            comm.barrier();
            (sum, comm.now())
        };
        let threads = VirtualCluster::run(&ClusterConfig::new(5), body);
        let evs = VirtualCluster::run(&events(5), body);
        for (t, e) in threads.iter().zip(&evs) {
            assert_eq!(t.0, e.0);
            assert_eq!(
                t.1.to_bits(),
                e.1.to_bits(),
                "sim times must be bit-identical"
            );
        }
    }

    #[test]
    fn event_backend_scales_past_thread_counts() {
        // A rank count that would be reckless as real OS-thread
        // parallelism is routine for the event engine.
        let p = 1024;
        let out = VirtualCluster::run(&events(p), |comm| {
            let sum = comm.allreduce_sum(&[1.0f32], TimeCategory::GpuGpuParam);
            sum[0]
        });
        assert_eq!(out.len(), p);
        for v in out {
            assert_eq!(v, p as f32);
        }
    }

    #[test]
    fn event_recv_any_order_is_deterministic() {
        // recv_any under events resolves FCFS by simulated time with a
        // deterministic schedule: repeated runs give identical arrival
        // orders even with many competing senders.
        let run = || {
            VirtualCluster::run(&events(9), |comm| {
                if comm.rank() == 0 {
                    let mut order = Vec::new();
                    for _ in 0..8 {
                        let (from, _) = comm.recv_any(3, TimeCategory::Other);
                        order.push(from);
                    }
                    order
                } else {
                    // Stagger clocks so arrivals are distinct and ordered.
                    comm.charge(TimeCategory::ForwardBackward, (9 - comm.rank()) as f64);
                    comm.send(0, 3, &[comm.rank() as f32], TimeCategory::Other);
                    Vec::new()
                }
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a[0], b[0]);
        // FCFS means channel-delivery order (as on threads, where it is
        // the OS schedule); under events the delivery order is the
        // engine's deterministic rank schedule.
        assert_eq!(a[0], vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn event_backend_detects_deadlock() {
        // Rank 1 waits for a message rank 0 never sends: on threads this
        // would hang; the event engine proves no rank is runnable and
        // aborts.
        let _ = VirtualCluster::run(&events(2), |comm| {
            if comm.rank() == 1 {
                let _ = comm.recv(0, 9, TimeCategory::Other);
            }
        });
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn event_backend_propagates_rank_panics() {
        let _ = VirtualCluster::run(&events(4), |comm| {
            comm.barrier();
            if comm.rank() == 2 {
                panic!("boom");
            }
            // Parked ranks must be woken into the abort, not left hanging.
            let _ = comm.recv(3, 1, TimeCategory::Other);
        });
    }

    #[test]
    fn with_default_scopes_the_backend() {
        assert_eq!(ClusterBackend::default_backend(), ClusterBackend::Threads);
        ClusterBackend::Events.with_default(|| {
            assert_eq!(ClusterBackend::default_backend(), ClusterBackend::Events);
            let cfg = ClusterConfig::new(2);
            assert_eq!(cfg.backend, ClusterBackend::Events);
        });
        assert_eq!(ClusterBackend::default_backend(), ClusterBackend::Threads);
    }
}
