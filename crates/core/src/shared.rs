// xtask: allow(wall-clock) — wall-clock trainer/driver: measures real elapsed time by design.
//! The shared-memory, wall-clock algorithm family (Figures 6 and 8).
//!
//! The paper's asynchronous methods differ only in *how workers
//! synchronize with the master's center weight*:
//!
//! | method            | ordering        | exchange                      |
//! |-------------------|-----------------|-------------------------------|
//! | Original EASGD    | round-robin     | elastic (Eq 1 + 2)            |
//! | Async SGD         | FCFS (lock)     | gradient push, weight pull    |
//! | Async MSGD        | FCFS (lock)     | + momentum (Eq 3–4)           |
//! | Async EASGD       | FCFS (lock)     | elastic (Eq 1 + 2)            |
//! | Async MEASGD      | FCFS (lock)     | elastic + momentum (Eq 5–6)   |
//! | Sync EASGD        | barrier (BSP)   | elastic, tree-reduced         |
//!
//! (The lock-free Hogwild variants live in [`crate::hogwild`].) Workers
//! are real threads computing real gradients; the master's state lives in
//! shared memory behind exactly the synchronization discipline each
//! method prescribes, so the relative performance the paper measures is a
//! genuine concurrency outcome here too.

use crate::config::TrainConfig;
use crate::metrics::RunResult;
use easgd_data::Dataset;
use easgd_nn::Network;
use easgd_tensor::ops::{
    elastic_center_update, elastic_momentum_update, elastic_worker_update, momentum_update,
    sgd_update,
};
use easgd_tensor::Rng;
use std::sync::{Barrier, Condvar, Mutex, RwLock};
use std::time::Instant;

/// Master state for the gradient-push methods (Async SGD / MSGD).
struct GradCenter {
    w: Vec<f32>,
    v: Vec<f32>,
}

/// Evaluates `weights` on the test set using a fresh replica of `proto`.
pub(crate) fn evaluate_center(proto: &Network, weights: &[f32], test: &Dataset) -> f32 {
    let mut net = proto.clone();
    net.set_params(weights);
    net.evaluate(&test.as_tensor(), test.labels(), 256)
}

fn per_worker_rng(cfg: &TrainConfig, worker: usize) -> Rng {
    Rng::new(cfg.seed ^ ((worker as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

fn finish(
    method: &str,
    proto: &Network,
    center: &[f32],
    test: &Dataset,
    cfg: &TrainConfig,
    wall: f64,
    losses: Vec<f32>,
) -> RunResult {
    RunResult {
        method: method.to_string(),
        iterations: cfg.iterations,
        wall_seconds: wall,
        sim_seconds: None,
        accuracy: evaluate_center(proto, center, test),
        final_loss: losses.iter().sum::<f32>() / losses.len().max(1) as f32,
        breakdown: None,
        trace: Vec::new(),
    }
}

/// Runs the generic locked-master worker loop. `exchange` is called once
/// per step with `(center_lock_free_scratch…)`; it owns the
/// method-specific synchronization.
fn run_locked<F>(
    method: &str,
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
    center: &Mutex<GradCenter>,
    exchange: F,
) -> RunResult
where
    F: Fn(&Mutex<GradCenter>, &mut Network, &mut [f32], &[f32], &TrainConfig, usize) + Sync,
{
    cfg.validate();
    let shards = train.partition(cfg.workers);
    let start = Instant::now();
    let losses: Vec<f32> = std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(w, shard)| {
                let exchange = &exchange;
                s.spawn(move || {
                    let mut net = proto.clone();
                    let mut rng = per_worker_rng(cfg, w);
                    let n = net.num_params();
                    let mut grad = vec![0.0f32; n];
                    let mut velocity = vec![0.0f32; n];
                    let mut last_loss = f32::NAN;
                    for step in 0..cfg.iterations {
                        let batch = shard.sample_batch(&mut rng, cfg.batch);
                        let stats = net.forward_backward(&batch.images, &batch.labels);
                        last_loss = stats.loss;
                        grad.copy_from_slice(net.grads().as_slice());
                        exchange(center, &mut net, &mut velocity, &grad, cfg, step);
                    }
                    last_loss
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed().as_secs_f64();
    let center_w = center.lock().unwrap().w.clone();
    finish(method, proto, &center_w, test, cfg, wall, losses)
}

/// Async SGD (§3.1): FCFS parameter server. The worker pushes its
/// sub-gradient; the master applies `W ← W − η·ΔWᵢ` under the lock and
/// returns the fresh weights.
pub fn async_sgd(proto: &Network, train: &Dataset, test: &Dataset, cfg: &TrainConfig) -> RunResult {
    let center = Mutex::new(GradCenter {
        w: proto.params().as_slice().to_vec(),
        v: vec![0.0; proto.num_params()],
    });
    run_locked(
        "Async SGD",
        proto,
        train,
        test,
        cfg,
        &center,
        |center, net, _vel, grad, cfg, _step| {
            let mut c = center.lock().unwrap();
            sgd_update(cfg.eta, &mut c.w, grad);
            net.set_params(&c.w);
        },
    )
}

/// Async MSGD: Async SGD with the momentum update of Equations (3)–(4)
/// applied at the master.
pub fn async_msgd(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> RunResult {
    let center = Mutex::new(GradCenter {
        w: proto.params().as_slice().to_vec(),
        v: vec![0.0; proto.num_params()],
    });
    run_locked(
        "Async MSGD",
        proto,
        train,
        test,
        cfg,
        &center,
        |center, net, _vel, grad, cfg, _step| {
            let mut c = center.lock().unwrap();
            let GradCenter { w, v } = &mut *c;
            momentum_update(cfg.eta, cfg.mu, w, v, grad);
            net.set_params(w);
        },
    )
}

/// Async EASGD (ours, §5.1): FCFS exchange of *weights*. Under the lock
/// the master performs the Equation (2) pull toward the worker; the
/// worker then applies Equation (1) locally against the snapshot it took.
pub fn async_easgd(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> RunResult {
    let center = Mutex::new(GradCenter {
        w: proto.params().as_slice().to_vec(),
        v: Vec::new(),
    });
    run_locked(
        "Async EASGD",
        proto,
        train,
        test,
        cfg,
        &center,
        |center, net, vel, grad, cfg, step| {
            // Communication period τ: τ−1 local SGD steps between elastic
            // exchanges (τ = 1 ⇒ exchange every step, the paper's setting).
            if (step + 1) % cfg.comm_period != 0 {
                sgd_update(cfg.eta, net.params_mut().as_mut_slice(), grad);
                return;
            }
            // `vel` doubles as the center-snapshot scratch here (unused by
            // the plain elastic update).
            let snapshot: &mut [f32] = vel;
            {
                let mut c = center.lock().unwrap();
                elastic_center_update(cfg.eta, cfg.rho, &mut c.w, net.params().as_slice());
                snapshot.copy_from_slice(&c.w);
            }
            elastic_worker_update(
                cfg.eta,
                cfg.rho,
                net.params_mut().as_mut_slice(),
                grad,
                snapshot,
            );
        },
    )
}

/// Async MEASGD (ours, §5.1): Async EASGD with the worker update replaced
/// by the momentum-elastic Equations (5)–(6).
pub fn async_measgd(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> RunResult {
    cfg.validate();
    let shards = train.partition(cfg.workers);
    let center = Mutex::new(proto.params().as_slice().to_vec());
    let start = Instant::now();
    let losses: Vec<f32> = std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(w, shard)| {
                let center = &center;
                s.spawn(move || {
                    let mut net = proto.clone();
                    let mut rng = per_worker_rng(cfg, w);
                    let n = net.num_params();
                    let mut grad = vec![0.0f32; n];
                    let mut velocity = vec![0.0f32; n];
                    let mut snapshot = vec![0.0f32; n];
                    let mut last_loss = f32::NAN;
                    for step in 0..cfg.iterations {
                        let batch = shard.sample_batch(&mut rng, cfg.batch);
                        let stats = net.forward_backward(&batch.images, &batch.labels);
                        last_loss = stats.loss;
                        grad.copy_from_slice(net.grads().as_slice());
                        if (step + 1) % cfg.comm_period != 0 {
                            // Local momentum step between exchanges.
                            momentum_update(
                                cfg.eta,
                                cfg.mu,
                                net.params_mut().as_mut_slice(),
                                &mut velocity,
                                &grad,
                            );
                            continue;
                        }
                        {
                            let mut c = center.lock().unwrap();
                            elastic_center_update(
                                cfg.eta,
                                cfg.rho,
                                &mut c,
                                net.params().as_slice(),
                            );
                            snapshot.copy_from_slice(&c);
                        }
                        elastic_momentum_update(
                            cfg.eta,
                            cfg.mu,
                            cfg.rho,
                            net.params_mut().as_mut_slice(),
                            &mut velocity,
                            &grad,
                            &snapshot,
                        );
                    }
                    last_loss
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed().as_secs_f64();
    let center_w = center.lock().unwrap().clone();
    finish("Async MEASGD", proto, &center_w, test, cfg, wall, losses)
}

/// Original EASGD (§3.3, Algorithm 1): identical elastic exchange to
/// [`async_easgd`], but the master serves workers in strict *round-robin
/// rank order* — worker `i+1`'s exchange cannot begin before worker `i`'s
/// has finished. Gradient computation is pipelined outside the turn
/// (matching the overlapped Original EASGD row of Table 3); the ordering
/// constraint is what costs performance.
pub fn original_easgd_turns(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> RunResult {
    cfg.validate();
    let shards = train.partition(cfg.workers);
    let center = Mutex::new(proto.params().as_slice().to_vec());
    let turn = Mutex::new(0usize);
    let turn_cv = Condvar::new();
    let start = Instant::now();
    let losses: Vec<f32> = std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(w, shard)| {
                let center = &center;
                let turn = &turn;
                let turn_cv = &turn_cv;
                s.spawn(move || {
                    let mut net = proto.clone();
                    let mut rng = per_worker_rng(cfg, w);
                    let n = net.num_params();
                    let mut grad = vec![0.0f32; n];
                    let mut snapshot = vec![0.0f32; n];
                    let mut last_loss = f32::NAN;
                    for _ in 0..cfg.iterations {
                        let batch = shard.sample_batch(&mut rng, cfg.batch);
                        let stats = net.forward_backward(&batch.images, &batch.labels);
                        last_loss = stats.loss;
                        grad.copy_from_slice(net.grads().as_slice());
                        // Wait for this worker's slot in the global order.
                        {
                            let mut t = turn.lock().unwrap();
                            while *t % cfg.workers != w {
                                t = turn_cv.wait(t).unwrap();
                            }
                            {
                                let mut c = center.lock().unwrap();
                                elastic_center_update(
                                    cfg.eta,
                                    cfg.rho,
                                    &mut c,
                                    net.params().as_slice(),
                                );
                                snapshot.copy_from_slice(&c);
                            }
                            *t += 1;
                            turn_cv.notify_all();
                        }
                        elastic_worker_update(
                            cfg.eta,
                            cfg.rho,
                            net.params_mut().as_mut_slice(),
                            &grad,
                            &snapshot,
                        );
                    }
                    last_loss
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed().as_secs_f64();
    let center_w = center.lock().unwrap().clone();
    finish("Original EASGD", proto, &center_w, test, cfg, wall, losses)
}

/// Sync EASGD (ours, §5.1), shared-memory realization: bulk-synchronous
/// rounds. Each round every worker computes a gradient, the local weights
/// are tree-reduced (here: a shared accumulator behind a barrier), the
/// master applies Equation (2) once with the full sum, workers apply
/// Equation (1). Deterministic given the seed.
pub fn sync_easgd_shared(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
) -> RunResult {
    cfg.validate();
    let shards = train.partition(cfg.workers);
    let n = proto.num_params();
    let center = RwLock::new(proto.params().as_slice().to_vec());
    // One weight slot per worker; the master folds them in rank order so
    // the reduction — like the paper's fixed-shape tree — is
    // deterministic.
    let slots: Vec<Mutex<Vec<f32>>> = (0..cfg.workers)
        .map(|_| Mutex::new(vec![0.0f32; n]))
        .collect();
    let barrier = Barrier::new(cfg.workers);
    let start = Instant::now();
    let losses: Vec<f32> = std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(w, shard)| {
                let center = &center;
                let slots = &slots;
                let barrier = &barrier;
                s.spawn(move || {
                    let mut net = proto.clone();
                    let mut rng = per_worker_rng(cfg, w);
                    let mut grad = vec![0.0f32; n];
                    let mut snapshot = vec![0.0f32; n];
                    let mut last_loss = f32::NAN;
                    for _ in 0..cfg.iterations {
                        // Steps (1)+(2): gradient + read of W̄_t (overlappable).
                        snapshot.copy_from_slice(&center.read().unwrap());
                        let batch = shard.sample_batch(&mut rng, cfg.batch);
                        let stats = net.forward_backward(&batch.images, &batch.labels);
                        last_loss = stats.loss;
                        grad.copy_from_slice(net.grads().as_slice());
                        // Step (3): publish Wᵢ for the reduction.
                        slots[w]
                            .lock()
                            .unwrap()
                            .copy_from_slice(net.params().as_slice());
                        barrier.wait();
                        // Step (5): master folds Σ Wᵢ into W̄ once, in order.
                        if w == 0 {
                            let mut c = center.write().unwrap();
                            let p = cfg.workers as f32;
                            let scale = cfg.eta * cfg.rho;
                            let mut sum = vec![0.0f32; n];
                            for slot in slots.iter() {
                                easgd_tensor::ops::add_assign(&mut sum, &slot.lock().unwrap());
                            }
                            for (ci, si) in c.iter_mut().zip(sum.iter()) {
                                *ci += scale * (si - p * *ci);
                            }
                        }
                        // Step (4): worker update with the pre-round W̄_t.
                        elastic_worker_update(
                            cfg.eta,
                            cfg.rho,
                            net.params_mut().as_mut_slice(),
                            &grad,
                            &snapshot,
                        );
                        barrier.wait();
                    }
                    last_loss
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed().as_secs_f64();
    let center_w = center.read().unwrap().clone();
    finish("Sync EASGD", proto, &center_w, test, cfg, wall, losses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use easgd_data::SyntheticSpec;
    use easgd_nn::models::lenet_tiny;

    fn setup() -> (Network, Dataset, Dataset) {
        let task = SyntheticSpec::mnist_small().task(11);
        let (train, test) = task.train_test(600, 200, 12);
        (lenet_tiny(13), train, test)
    }

    fn quick_cfg(iters: usize) -> TrainConfig {
        TrainConfig {
            workers: 4,
            batch: 16,
            eta: 0.05,
            rho: 0.3,
            mu: 0.9,
            iterations: iters,
            seed: 21,
            comm_period: 1,
        }
    }

    #[test]
    fn async_sgd_learns_above_chance() {
        let (proto, train, test) = setup();
        let r = async_sgd(&proto, &train, &test, &quick_cfg(150));
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
        assert!(r.wall_seconds > 0.0);
    }

    #[test]
    fn async_msgd_learns_above_chance() {
        let (proto, train, test) = setup();
        // Momentum amplifies the effective rate by ~1/(1−µ); use the
        // correspondingly smaller η (standard MSGD practice).
        let mut cfg = quick_cfg(150);
        cfg.eta = 0.01;
        let r = async_msgd(&proto, &train, &test, &cfg);
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
    }

    #[test]
    fn async_easgd_learns_above_chance() {
        let (proto, train, test) = setup();
        let r = async_easgd(&proto, &train, &test, &quick_cfg(200));
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
    }

    #[test]
    fn async_measgd_learns_above_chance() {
        let (proto, train, test) = setup();
        let r = async_measgd(&proto, &train, &test, &quick_cfg(150));
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
    }

    #[test]
    fn original_easgd_learns_above_chance() {
        let (proto, train, test) = setup();
        let r = original_easgd_turns(&proto, &train, &test, &quick_cfg(200));
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
    }

    #[test]
    fn sync_easgd_learns_above_chance() {
        let (proto, train, test) = setup();
        let r = sync_easgd_shared(&proto, &train, &test, &quick_cfg(200));
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
    }

    #[test]
    fn sync_easgd_is_deterministic() {
        let (proto, train, test) = setup();
        let cfg = quick_cfg(30);
        let a = sync_easgd_shared(&proto, &train, &test, &cfg);
        let b = sync_easgd_shared(&proto, &train, &test, &cfg);
        // §8: "Sync EASGD … deterministic and reproducible."
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.final_loss, b.final_loss);
    }

    #[test]
    fn methods_report_their_names() {
        let (proto, train, test) = setup();
        let cfg = quick_cfg(5);
        assert_eq!(async_sgd(&proto, &train, &test, &cfg).method, "Async SGD");
        assert_eq!(
            original_easgd_turns(&proto, &train, &test, &cfg).method,
            "Original EASGD"
        );
        assert_eq!(
            sync_easgd_shared(&proto, &train, &test, &cfg).method,
            "Sync EASGD"
        );
    }

    #[test]
    fn comm_period_trades_exchanges_for_local_steps() {
        // τ = 4: the elastic methods still learn (local SGD between
        // exchanges is a valid EASGD configuration), and the center is
        // still pulled toward the workers.
        let (proto, train, test) = setup();
        let cfg = quick_cfg(200).with_comm_period(4);
        let r = async_easgd(&proto, &train, &test, &cfg);
        assert!(r.accuracy > 0.4, "tau=4 async easgd acc = {}", r.accuracy);
        let h = crate::hogwild::hogwild_easgd(&proto, &train, &test, &cfg);
        assert!(h.accuracy > 0.4, "tau=4 hogwild easgd acc = {}", h.accuracy);
    }

    #[test]
    fn single_worker_degenerates_to_serial_sgd() {
        let (proto, train, test) = setup();
        let cfg = quick_cfg(100).with_workers(1);
        let r = async_sgd(&proto, &train, &test, &cfg);
        assert!(r.accuracy > 0.4, "acc = {}", r.accuracy);
    }
}
