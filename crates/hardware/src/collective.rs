//! Closed-form costs of collective communication patterns.
//!
//! The heart of Sync EASGD1 (§6.1.1): replacing `P` ordered blocking
//! send/receives — cost `P·(α + β·|W|)` — with a binomial-tree reduction —
//! cost `⌈log₂P⌉·(α + β·|W|)`. These formulas price every schedule the
//! algorithms use; the executable counterparts live in `easgd-cluster`.

use crate::net::AlphaBeta;

/// Ceil of log₂(p); 0 for p ≤ 1.
pub fn ceil_log2(p: usize) -> u32 {
    if p <= 1 {
        0
    } else {
        usize::BITS - (p - 1).leading_zeros()
    }
}

/// Round-robin exchange (Original EASGD, §3.3): the master talks to one
/// worker at a time, in rank order; `p` sequential messages of `bytes`.
/// Θ(P).
pub fn round_robin_exchange(link: &AlphaBeta, p: usize, bytes: usize) -> f64 {
    p as f64 * link.time(bytes)
}

/// Linear gather/scatter (a parameter server serving `p` workers one by
/// one): identical asymptotics to round-robin.
pub fn linear_exchange(link: &AlphaBeta, p: usize, bytes: usize) -> f64 {
    round_robin_exchange(link, p, bytes)
}

/// Binomial-tree reduce of `bytes` across `p` ranks: `⌈log₂p⌉` rounds,
/// each a full-size message (Sync EASGD1's tree reduction). Θ(log P).
pub fn reduce_tree(link: &AlphaBeta, p: usize, bytes: usize) -> f64 {
    ceil_log2(p) as f64 * link.time(bytes)
}

/// Binomial-tree broadcast: same cost shape as the tree reduce.
pub fn broadcast_tree(link: &AlphaBeta, p: usize, bytes: usize) -> f64 {
    reduce_tree(link, p, bytes)
}

/// Rabenseifner-style allreduce (reduce-scatter + allgather):
/// `2·log₂p·α + 2·((p−1)/p)·n·β`. The bandwidth-optimal schedule MPI
/// libraries use for large messages; included as the "well-tuned
/// state-of-the-art" cost the Intel-Caffe baseline would pay.
pub fn allreduce_rabenseifner(link: &AlphaBeta, p: usize, bytes: usize) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let lg = ceil_log2(p) as f64;
    2.0 * lg * link.alpha_s
        + 2.0 * ((p - 1) as f64 / p as f64) * bytes as f64 * link.beta_s_per_byte
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> AlphaBeta {
        AlphaBeta::fdr_infiniband()
    }

    #[test]
    fn ceil_log2_known_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(64), 6);
        assert_eq!(ceil_log2(65), 7);
    }

    #[test]
    fn tree_beats_round_robin_for_p_above_2() {
        // The Θ(log P) vs Θ(P) claim (contribution 1 of the paper).
        let bytes = 1_000_000; // ~a LeNet of weights
        for p in [4, 8, 16, 64, 256] {
            let rr = round_robin_exchange(&link(), p, bytes);
            let tree = reduce_tree(&link(), p, bytes);
            assert!(tree < rr, "p={p}: tree {tree} !< round-robin {rr}");
        }
    }

    #[test]
    fn speedup_ratio_is_p_over_log_p() {
        let bytes = 4_000_000;
        let p = 64;
        let ratio = round_robin_exchange(&link(), p, bytes) / reduce_tree(&link(), p, bytes);
        assert!((ratio - 64.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn equal_at_p_2() {
        let bytes = 1024;
        assert!(
            (round_robin_exchange(&link(), 2, bytes) - 2.0 * reduce_tree(&link(), 2, bytes)).abs()
                < 1e-12
        );
    }

    #[test]
    fn rabenseifner_beats_tree_for_large_messages() {
        // For big |W| the bandwidth term dominates and reduce-scatter wins.
        let p = 32;
        let bytes = 100_000_000; // VGG-scale
        assert!(allreduce_rabenseifner(&link(), p, bytes) < 2.0 * reduce_tree(&link(), p, bytes));
    }

    #[test]
    fn rabenseifner_zero_for_single_rank() {
        assert_eq!(allreduce_rabenseifner(&link(), 1, 123456), 0.0);
    }

    #[test]
    fn costs_scale_linearly_with_message_size_at_fixed_p() {
        let p = 8;
        let t1 = reduce_tree(&link(), p, 1_000_000);
        let t2 = reduce_tree(&link(), p, 2_000_000);
        let beta_part = |t: f64| t - ceil_log2(p) as f64 * link().alpha_s;
        assert!((beta_part(t2) / beta_part(t1) - 2.0).abs() < 1e-9);
    }
}
