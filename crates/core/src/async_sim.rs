// xtask: allow(wall-clock) — wall-clock trainer/driver: measures real elapsed time by design.
//! Asynchronous parameter server on the simulated cluster (Figure 5,
//! §3.1, §5.1) — the message-passing counterpart of the shared-memory
//! implementations in [`crate::shared`].
//!
//! The master (rank 0) serves workers **first-come-first-served**: it
//! receives whatever arrives next (`recv_any`), updates, and replies.
//! Contrast with Original EASGD's round-robin rule, which serves workers
//! in rank order no matter who is ready. With homogeneous workers the
//! two schedules cost the same — which is exactly the paper's
//! observation that “neither Async EASGD nor Async MEASGD were
//! significantly faster than Original EASGD” (§1). The FCFS advantage
//! appears when worker compute times vary (`compute_jitter` in
//! [`SimCosts`]): round-robin convoys behind the slow worker, FCFS
//! doesn't — the mechanism this module makes measurable.

use crate::config::TrainConfig;
use crate::engine::{assemble_sim, rank_rng, ElasticRule, LocalStep, RankOutcome, SALT_PHI};
use crate::metrics::RunResult;
use crate::simcost::SimCosts;
use easgd_cluster::{tags, ClusterConfig, Comm, TimeCategory, VirtualCluster};
use easgd_data::Dataset;
use easgd_nn::Network;
use easgd_tensor::ops::sgd_update;
use std::time::Instant;

/// Which exchange rule the simulated server applies.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AsyncVariant {
    /// Workers push sub-gradients; master applies `W ← W − η·ΔWᵢ`
    /// (Async SGD, §3.1).
    Sgd,
    /// Workers push weights; master applies the Equation (2) pull and the
    /// worker applies Equation (1) (Async EASGD, §5.1).
    Easgd,
}

impl AsyncVariant {
    fn label(&self) -> &'static str {
        match self {
            AsyncVariant::Sgd => "Async SGD [sim]",
            AsyncVariant::Easgd => "Async EASGD [sim]",
        }
    }
}

/// Runs the FCFS parameter server on a simulated `cfg.workers`-GPU node.
/// `cfg.iterations` steps per worker. Worker compute is jittered per
/// `costs.compute_jitter`.
pub fn async_server_sim(
    proto: &Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &TrainConfig,
    costs: &SimCosts,
    variant: AsyncVariant,
) -> RunResult {
    cfg.validate();
    let g = cfg.workers;
    let cluster = ClusterConfig::new(g + 1);
    let total = cfg.iterations * g;
    let xfer = costs.unpacked_weight_time();
    let shards = train.partition(g);
    let rule = ElasticRule::from_config(cfg);
    let wall_start = Instant::now();

    let outs = VirtualCluster::run(&cluster, |comm: &mut Comm| {
        if comm.rank() == 0 {
            // ---- master: serve whoever arrives next, total times.
            let mut center = proto.params().as_slice().to_vec();
            // Receive scratch, reused across requests.
            let mut payload = Vec::new();
            for _ in 0..total {
                let from = comm.recv_any_into(
                    tags::ASYNC_REQ,
                    TimeCategory::ForwardBackward,
                    &mut payload,
                );
                // The inbound transfer crosses the host link.
                comm.charge(TimeCategory::CpuGpuParam, xfer);
                match variant {
                    AsyncVariant::Sgd => sgd_update(cfg.eta, &mut center, &payload),
                    AsyncVariant::Easgd => rule.center_pull(&mut center, &payload),
                }
                comm.charge(TimeCategory::CpuUpdate, costs.cpu_update);
                comm.send_costed(
                    from,
                    tags::async_reply(from),
                    &center,
                    xfer,
                    TimeCategory::CpuGpuParam,
                );
            }
            RankOutcome::Center {
                center,
                report: comm.report(),
                trace: Vec::new(),
                loss_trace: Vec::new(),
            }
        } else {
            // ---- worker: compute, push, pull, update.
            let me = comm.rank();
            let shard = &shards[me - 1];
            let mut local = LocalStep::new(proto);
            let mut rng = rank_rng(cfg.seed, SALT_PHI, me);
            // Reply scratch, reused across rounds.
            let mut reply = Vec::new();
            for _ in 0..cfg.iterations {
                let batch = shard.sample_batch(&mut rng, cfg.batch);
                local.forward_backward(&batch);
                // Jittered compute: heterogeneity knob of the study.
                let jit = 1.0 + costs.compute_jitter * rng.uniform() as f64;
                comm.charge(TimeCategory::ForwardBackward, costs.fwd_bwd * jit);
                match variant {
                    AsyncVariant::Sgd => {
                        comm.send_costed(
                            0,
                            tags::ASYNC_REQ,
                            local.grad(),
                            0.0,
                            TimeCategory::Other,
                        );
                        comm.recv_into(0, tags::async_reply(me), TimeCategory::Other, &mut reply);
                        local.set_params(&reply);
                    }
                    AsyncVariant::Easgd => {
                        comm.send_costed(
                            0,
                            tags::ASYNC_REQ,
                            local.params(),
                            0.0,
                            TimeCategory::Other,
                        );
                        comm.recv_into(0, tags::async_reply(me), TimeCategory::Other, &mut reply);
                        local.elastic_step_against(&rule, &reply);
                        comm.charge(TimeCategory::GpuUpdate, costs.gpu_update);
                    }
                }
            }
            RankOutcome::Worker {
                report: None,
                last_loss: local.last_loss(),
                loss_trace: local.take_loss_trace(),
            }
        }
    });

    let wall = wall_start.elapsed().as_secs_f64();
    assemble_sim(variant.label(), proto, test, cfg.iterations, wall, outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::original::{original_easgd_sim, OriginalMode};
    use easgd_data::SyntheticSpec;
    use easgd_nn::models::lenet_tiny;

    fn setup() -> (Network, Dataset, Dataset) {
        let task = SyntheticSpec::mnist_small().task(141);
        let (train, test) = task.train_test(600, 200, 142);
        (lenet_tiny(143), train, test)
    }

    fn cfg(iters: usize) -> TrainConfig {
        TrainConfig::figure6(iters).with_seed(151)
    }

    #[test]
    fn async_easgd_sim_learns() {
        let (net, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let r = async_server_sim(&net, &train, &test, &cfg(60), &costs, AsyncVariant::Easgd);
        assert!(r.accuracy > 0.3, "acc = {}", r.accuracy);
        assert!(r.sim_seconds.unwrap() > 0.0);
    }

    #[test]
    fn async_sgd_sim_learns() {
        let (net, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let mut c = cfg(60);
        c.eta = 0.05; // FCFS gradient pushes at η=0.2 are unstable
        let r = async_server_sim(&net, &train, &test, &c, &costs, AsyncVariant::Sgd);
        assert!(r.accuracy > 0.3, "acc = {}", r.accuracy);
    }

    #[test]
    fn homogeneous_async_matches_round_robin_cost() {
        // §1: without heterogeneity, FCFS ≈ round-robin — both serialize
        // through the master's link.
        let (net, train, test) = setup();
        let costs = SimCosts::mnist_lenet_4gpu();
        let c = cfg(25);
        let asy = async_server_sim(&net, &train, &test, &c, &costs, AsyncVariant::Easgd)
            .sim_seconds
            .unwrap();
        let orig = original_easgd_sim(&net, &train, &test, &c, &costs, OriginalMode::Pipelined)
            .sim_seconds
            .unwrap();
        let ratio = asy / orig;
        assert!(
            (0.7..1.4).contains(&ratio),
            "homogeneous async/original = {ratio:.2} (expected ≈ 1)"
        );
    }

    #[test]
    fn fcfs_beats_round_robin_under_heterogeneity() {
        // The FCFS mechanism: with ±2× jittered worker compute the
        // round-robin master convoys behind slow workers; FCFS keeps
        // serving whoever is ready.
        let (net, train, test) = setup();
        let mut costs = SimCosts::mnist_lenet_4gpu();
        costs.compute_jitter = 8.0; // slow workers up to 9× the fast ones
        costs.fwd_bwd = 20e-3; // compute-dominated regime
        let c = cfg(25);
        let asy = async_server_sim(&net, &train, &test, &c, &costs, AsyncVariant::Easgd)
            .sim_seconds
            .unwrap();
        let orig = original_easgd_sim(&net, &train, &test, &c, &costs, OriginalMode::Serialized)
            .sim_seconds
            .unwrap();
        assert!(
            asy < orig,
            "FCFS ({asy:.2}s) should beat ordered serving ({orig:.2}s) under jitter"
        );
    }
}
