//! im2col / col2im lowering for convolution-as-GEMM.
//!
//! Convolutional layers in the paper's era of frameworks (Caffe, cuDNN)
//! were implemented by unrolling input patches into a matrix and calling
//! GEMM; we do the same so the per-worker compute path matches what the
//! paper benchmarked.

/// Geometry of a 2-D convolution (single spatial configuration shared by
/// im2col, col2im and the conv layer).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride (same both directions).
    pub stride: usize,
    /// Zero padding (same all sides).
    pub pad: usize,
}

impl Conv2dGeometry {
    /// Panics with the offending geometry unless [`is_valid`](Self::is_valid)
    /// holds. The dimension accessors call this so an impossible geometry
    /// (kernel larger than the padded input, zero stride or kernel) fails
    /// loudly at the first size computation — a `saturating_sub` here used
    /// to round such geometries to a bogus 1-pixel output, and every
    /// buffer sized from it was silently wrong.
    fn assert_valid(&self) {
        assert!(
            self.is_valid(),
            "invalid conv geometry (kernel must fit the padded input, \
             stride and kernel must be non-zero): {self:?}"
        );
    }

    /// Output height after the convolution.
    ///
    /// # Panics
    /// Panics if the geometry is not [`is_valid`](Self::is_valid).
    pub fn out_h(&self) -> usize {
        self.assert_valid();
        (self.in_h + 2 * self.pad - self.k_h) / self.stride + 1
    }

    /// Output width after the convolution.
    ///
    /// # Panics
    /// Panics if the geometry is not [`is_valid`](Self::is_valid).
    pub fn out_w(&self) -> usize {
        self.assert_valid();
        (self.in_w + 2 * self.pad - self.k_w) / self.stride + 1
    }

    /// Rows of the im2col matrix: one per kernel element per input channel.
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.k_h * self.k_w
    }

    /// Columns of the im2col matrix: one per output pixel.
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Number of elements in one input image (C·H·W).
    pub fn input_len(&self) -> usize {
        self.in_channels * self.in_h * self.in_w
    }

    /// Validates that the geometry produces at least one output pixel.
    pub fn is_valid(&self) -> bool {
        self.in_h + 2 * self.pad >= self.k_h
            && self.in_w + 2 * self.pad >= self.k_w
            && self.stride > 0
            && self.k_h > 0
            && self.k_w > 0
    }
}

/// Range of output columns `ox` for which `ix = ox·stride + k - pad`
/// lands inside `[0, extent)`. Empty ranges come back as `(lo, lo)`.
fn valid_out_range(
    extent: usize,
    out_extent: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> (usize, usize) {
    let off = k as isize - pad as isize;
    // Smallest ox with ox·stride + off ≥ 0.
    let lo = if off >= 0 {
        0
    } else {
        ((-off) as usize).div_ceil(stride)
    };
    // Largest ox with ox·stride + off < extent, plus one.
    let hi = if off >= extent as isize {
        lo
    } else {
        out_extent.min((extent as isize - 1 - off) as usize / stride + 1)
    };
    (lo.min(out_extent), hi.max(lo).min(out_extent))
}

/// Unrolls one CHW image into the `col_rows() × col_cols()` patch matrix.
///
/// Out-of-image (padding) positions contribute zeros.
///
/// # Panics
/// Panics if buffer sizes don't match the geometry.
pub fn im2col(geom: &Conv2dGeometry, image: &[f32], col: &mut [f32]) {
    assert!(geom.is_valid(), "invalid conv geometry {geom:?}");
    assert_eq!(image.len(), geom.input_len(), "image buffer size mismatch");
    assert_eq!(
        col.len(),
        geom.col_rows() * geom.col_cols(),
        "col buffer size mismatch"
    );
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let n_cols = oh * ow;
    let mut row = 0;
    for c in 0..geom.in_channels {
        let plane = &image[c * geom.in_h * geom.in_w..(c + 1) * geom.in_h * geom.in_w];
        for ky in 0..geom.k_h {
            for kx in 0..geom.k_w {
                let (ox_lo, ox_hi) = valid_out_range(geom.in_w, ow, kx, geom.stride, geom.pad);
                let out_row = &mut col[row * n_cols..(row + 1) * n_cols];
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    let dst = &mut out_row[oy * ow..(oy + 1) * ow];
                    if iy < 0 || iy >= geom.in_h as isize {
                        dst.iter_mut().for_each(|x| *x = 0.0);
                        continue;
                    }
                    let src_row = &plane[iy as usize * geom.in_w..(iy as usize + 1) * geom.in_w];
                    // Padding columns outside the valid window are zeros;
                    // inside it `ix` advances by `stride` with no bounds
                    // checks, and the stride-1 case is a straight copy.
                    dst[..ox_lo].iter_mut().for_each(|x| *x = 0.0);
                    dst[ox_hi..].iter_mut().for_each(|x| *x = 0.0);
                    let ix0 = (ox_lo * geom.stride + kx) - geom.pad;
                    if geom.stride == 1 {
                        dst[ox_lo..ox_hi].copy_from_slice(&src_row[ix0..ix0 + (ox_hi - ox_lo)]);
                    } else {
                        for (i, d) in dst[ox_lo..ox_hi].iter_mut().enumerate() {
                            *d = src_row[ix0 + i * geom.stride];
                        }
                    }
                }
                row += 1;
            }
        }
    }
}

/// Scatters a patch-matrix gradient back to image space (the adjoint of
/// [`im2col`]): overlapping patches accumulate.
///
/// # Panics
/// Panics if buffer sizes don't match the geometry.
pub fn col2im(geom: &Conv2dGeometry, col: &[f32], image: &mut [f32]) {
    assert!(geom.is_valid(), "invalid conv geometry {geom:?}");
    assert_eq!(image.len(), geom.input_len(), "image buffer size mismatch");
    assert_eq!(
        col.len(),
        geom.col_rows() * geom.col_cols(),
        "col buffer size mismatch"
    );
    image.iter_mut().for_each(|x| *x = 0.0);
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let n_cols = oh * ow;
    let mut row = 0;
    for c in 0..geom.in_channels {
        let plane = &mut image[c * geom.in_h * geom.in_w..(c + 1) * geom.in_h * geom.in_w];
        for ky in 0..geom.k_h {
            for kx in 0..geom.k_w {
                let (ox_lo, ox_hi) = valid_out_range(geom.in_w, ow, kx, geom.stride, geom.pad);
                let src_row = &col[row * n_cols..(row + 1) * n_cols];
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    if iy < 0 || iy >= geom.in_h as isize {
                        continue;
                    }
                    // Same `ox`-ascending accumulation order as the
                    // per-element form (bit-identical adjoint); only the
                    // padding bounds checks are hoisted out of the loop.
                    let ix0 = (ox_lo * geom.stride + kx) - geom.pad;
                    let dst = &mut plane[iy as usize * geom.in_w + ix0..];
                    let src = &src_row[oy * ow + ox_lo..oy * ow + ox_hi];
                    if geom.stride == 1 {
                        for (d, s) in dst[..src.len()].iter_mut().zip(src) {
                            *d += s;
                        }
                    } else {
                        for (i, s) in src.iter().enumerate() {
                            dst[i * geom.stride] += s;
                        }
                    }
                }
                row += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom_3x3_input_2x2_kernel() -> Conv2dGeometry {
        Conv2dGeometry {
            in_channels: 1,
            in_h: 3,
            in_w: 3,
            k_h: 2,
            k_w: 2,
            stride: 1,
            pad: 0,
        }
    }

    #[test]
    fn output_dims() {
        let g = geom_3x3_input_2x2_kernel();
        assert_eq!((g.out_h(), g.out_w()), (2, 2));
        let padded = Conv2dGeometry { pad: 1, ..g };
        assert_eq!((padded.out_h(), padded.out_w()), (4, 4));
        let strided = Conv2dGeometry {
            in_h: 5,
            in_w: 5,
            stride: 2,
            ..g
        };
        assert_eq!((strided.out_h(), strided.out_w()), (2, 2));
    }

    #[test]
    #[should_panic(expected = "invalid conv geometry")]
    fn oversized_kernel_is_rejected_not_rounded() {
        // 2×2 input, 3×3 kernel, no padding: no valid output position.
        // The old saturating arithmetic reported a 1×1 output here.
        let g = Conv2dGeometry {
            in_channels: 1,
            in_h: 2,
            in_w: 2,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 0,
        };
        let _ = g.out_h();
    }

    #[test]
    #[should_panic(expected = "invalid conv geometry")]
    fn zero_stride_is_rejected() {
        let g = Conv2dGeometry {
            stride: 0,
            ..geom_3x3_input_2x2_kernel()
        };
        let _ = g.out_w();
    }

    #[test]
    fn kernel_exactly_filling_padded_input_is_valid() {
        // 2×2 input + pad 1 = 4×4 padded extent with a 4×4 kernel: exactly
        // one output pixel, the boundary the rejection must not eat.
        let g = Conv2dGeometry {
            in_channels: 1,
            in_h: 2,
            in_w: 2,
            k_h: 4,
            k_w: 4,
            stride: 1,
            pad: 1,
        };
        assert!(g.is_valid());
        assert_eq!((g.out_h(), g.out_w()), (1, 1));
    }

    #[test]
    fn im2col_known_patches() {
        let g = geom_3x3_input_2x2_kernel();
        // image: 0..9 row-major
        let image: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let mut col = vec![0.0; g.col_rows() * g.col_cols()];
        im2col(&g, &image, &mut col);
        // Row 0 = kernel (0,0) across the 4 output pixels: 0,1,3,4
        assert_eq!(&col[0..4], &[0., 1., 3., 4.]);
        // Row 3 = kernel (1,1): 4,5,7,8
        assert_eq!(&col[12..16], &[4., 5., 7., 8.]);
    }

    #[test]
    fn im2col_pads_with_zeros() {
        let g = Conv2dGeometry {
            pad: 1,
            ..geom_3x3_input_2x2_kernel()
        };
        let image = vec![1.0; 9];
        let mut col = vec![7.0; g.col_rows() * g.col_cols()];
        im2col(&g, &image, &mut col);
        // Kernel (0,0), output (0,0) reads image(-1,-1) → 0.
        assert_eq!(col[0], 0.0);
        // There must be real values too.
        assert!(col.contains(&1.0));
    }

    #[test]
    fn conv_via_gemm_matches_direct() {
        // 1×4×4 input, 2×2 kernel, stride 1, no pad; compare GEMM result to
        // a direct sliding-window convolution.
        let g = Conv2dGeometry {
            in_channels: 1,
            in_h: 4,
            in_w: 4,
            k_h: 2,
            k_w: 2,
            stride: 1,
            pad: 0,
        };
        let mut rng = crate::rng::Rng::new(1);
        let image: Vec<f32> = (0..16).map(|_| rng.uniform()).collect();
        let kernel: Vec<f32> = (0..4).map(|_| rng.uniform()).collect();
        let mut col = vec![0.0; g.col_rows() * g.col_cols()];
        im2col(&g, &image, &mut col);
        // out = kernel(1×4) · col(4×9)
        let out = crate::gemm::matmul(1, g.col_cols(), g.col_rows(), &kernel, &col);
        for oy in 0..3 {
            for ox in 0..3 {
                let mut acc = 0.0;
                for ky in 0..2 {
                    for kx in 0..2 {
                        acc += kernel[ky * 2 + kx] * image[(oy + ky) * 4 + (ox + kx)];
                    }
                }
                assert!((out[oy * 3 + ox] - acc).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property,
        // which is exactly what backprop correctness needs.
        let g = Conv2dGeometry {
            in_channels: 2,
            in_h: 5,
            in_w: 4,
            k_h: 3,
            k_w: 2,
            stride: 2,
            pad: 1,
        };
        let mut rng = crate::rng::Rng::new(2);
        let x: Vec<f32> = (0..g.input_len()).map(|_| rng.normal()).collect();
        let y: Vec<f32> = (0..g.col_rows() * g.col_cols())
            .map(|_| rng.normal())
            .collect();
        let mut cx = vec![0.0; y.len()];
        im2col(&g, &x, &mut cx);
        let mut aty = vec![0.0; x.len()];
        col2im(&g, &y, &mut aty);
        let lhs = crate::ops::dot(&cx, &y);
        let rhs = crate::ops::dot(&x, &aty);
        assert!(
            (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    /// Per-element reference forms of both lowerings, exactly the loop
    /// nest the slivered fast paths replaced; the fast paths must match
    /// them bit-for-bit (same adds, same order).
    fn im2col_ref(geom: &Conv2dGeometry, image: &[f32], col: &mut [f32]) {
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let n_cols = oh * ow;
        let mut row = 0;
        for c in 0..geom.in_channels {
            let plane = &image[c * geom.in_h * geom.in_w..(c + 1) * geom.in_h * geom.in_w];
            for ky in 0..geom.k_h {
                for kx in 0..geom.k_w {
                    let out_row = &mut col[row * n_cols..(row + 1) * n_cols];
                    for oy in 0..oh {
                        let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                        let dst = &mut out_row[oy * ow..(oy + 1) * ow];
                        if iy < 0 || iy >= geom.in_h as isize {
                            dst.iter_mut().for_each(|x| *x = 0.0);
                            continue;
                        }
                        let src_row =
                            &plane[iy as usize * geom.in_w..(iy as usize + 1) * geom.in_w];
                        for (ox, d) in dst.iter_mut().enumerate() {
                            let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                            *d = if ix < 0 || ix >= geom.in_w as isize {
                                0.0
                            } else {
                                src_row[ix as usize]
                            };
                        }
                    }
                    row += 1;
                }
            }
        }
    }

    fn col2im_ref(geom: &Conv2dGeometry, col: &[f32], image: &mut [f32]) {
        image.iter_mut().for_each(|x| *x = 0.0);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let n_cols = oh * ow;
        let mut row = 0;
        for c in 0..geom.in_channels {
            let plane_off = c * geom.in_h * geom.in_w;
            for ky in 0..geom.k_h {
                for kx in 0..geom.k_w {
                    let src_row = &col[row * n_cols..(row + 1) * n_cols];
                    for oy in 0..oh {
                        let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                        if iy < 0 || iy >= geom.in_h as isize {
                            continue;
                        }
                        for ox in 0..ow {
                            let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                            if ix < 0 || ix >= geom.in_w as isize {
                                continue;
                            }
                            image[plane_off + iy as usize * geom.in_w + ix as usize] +=
                                src_row[oy * ow + ox];
                        }
                    }
                    row += 1;
                }
            }
        }
    }

    #[test]
    fn slivered_paths_match_per_element_reference_bitwise() {
        let geoms = [
            (1, 3, 3, 2, 2, 1, 0),
            (2, 5, 4, 3, 2, 2, 1),
            (3, 8, 8, 3, 3, 1, 1),
            (2, 7, 5, 3, 3, 2, 2),
            (1, 4, 4, 4, 4, 1, 3),
            (2, 6, 6, 1, 1, 1, 0),
            (1, 5, 5, 5, 5, 3, 2),
        ];
        for (idx, &(in_channels, in_h, in_w, k_h, k_w, stride, pad)) in geoms.iter().enumerate() {
            let g = Conv2dGeometry {
                in_channels,
                in_h,
                in_w,
                k_h,
                k_w,
                stride,
                pad,
            };
            assert!(g.is_valid(), "bad fixture {idx}");
            let mut rng = crate::rng::Rng::new(90 + idx as u64);
            let image: Vec<f32> = (0..g.input_len()).map(|_| rng.normal()).collect();
            let n = g.col_rows() * g.col_cols();
            // Dirty output buffers: both paths must fully overwrite.
            let mut fast = vec![7.0; n];
            let mut want = vec![-3.0; n];
            im2col(&g, &image, &mut fast);
            im2col_ref(&g, &image, &mut want);
            for (i, (a, b)) in fast.iter().zip(&want).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "im2col geom {idx} elem {i}");
            }
            let grad: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
            let mut gx_fast = vec![9.0; g.input_len()];
            let mut gx_want = vec![-1.0; g.input_len()];
            col2im(&g, &grad, &mut gx_fast);
            col2im_ref(&g, &grad, &mut gx_want);
            for (i, (a, b)) in gx_fast.iter().zip(&gx_want).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "col2im geom {idx} elem {i}");
            }
        }
    }

    #[test]
    fn multichannel_rows_are_grouped_by_channel() {
        let g = Conv2dGeometry {
            in_channels: 2,
            in_h: 2,
            in_w: 2,
            k_h: 1,
            k_w: 1,
            stride: 1,
            pad: 0,
        };
        let image = vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0];
        let mut col = vec![0.0; g.col_rows() * g.col_cols()];
        im2col(&g, &image, &mut col);
        assert_eq!(&col[0..4], &[1., 2., 3., 4.]);
        assert_eq!(&col[4..8], &[10., 20., 30., 40.]);
    }
}
