//! The dynamic micro-batcher: per-shard FIFO queues with deadline
//! coalescing and pooled (counted) request storage.
//!
//! Coalescing rule: a shard's batch **closes at `batch_cap` requests or
//! `deadline_us` after its oldest request arrived, whichever comes
//! first**. FCFS holds within a shard (batches take consecutive queue
//! heads); the engine dispatches closed batches in `(ready time, shard)`
//! total order across shards.
//!
//! Storage discipline mirrors the training step's `TrainScratch`: pixel
//! payload buffers and batch request-lists are checked out of free
//! pools whose growth is counted through [`ScratchStats`]-style
//! counters. At steady state a request's whole queue→batch→recycle life
//! touches the allocator zero times — `BENCH_serve.json` asserts it.

use easgd_tensor::{BufGrowth, ScratchStats, TrainScratch};
use std::collections::VecDeque;

/// Counter-wise sum of two stats snapshots.
pub(crate) fn add_stats(a: ScratchStats, b: ScratchStats) -> ScratchStats {
    ScratchStats {
        fresh: a.fresh + b.fresh,
        grown: a.grown + b.grown,
        reused: a.reused + b.reused,
    }
}

/// Static configuration of a [`Batcher`] (and of the engine above it).
#[derive(Clone, Copy, Debug)]
pub struct BatcherConfig {
    /// Number of shards: one FIFO queue (and one model replica) each.
    pub shards: usize,
    /// Close a batch as soon as it holds this many requests.
    pub batch_cap: usize,
    /// … or when its oldest request has waited this long (µs).
    pub deadline_us: u64,
    /// Pixels per request (0 for modeled-only runs with no payload).
    pub sample_len: usize,
}

/// One queued inference request.
#[derive(Debug)]
pub struct Request {
    id: u64,
    arrival_us: u64,
    pixels: Vec<f32>,
}

impl Request {
    /// Engine-assigned id, increasing in submission order.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Logical arrival time (µs).
    pub fn arrival_us(&self) -> u64 {
        self.arrival_us
    }

    /// The request's pixel payload (`sample_len` elements).
    pub fn pixels(&self) -> &[f32] {
        &self.pixels
    }
}

/// A closed, ready-to-dispatch batch: consecutive FCFS requests of one
/// shard, ragged (1 ≤ len ≤ `batch_cap`), never padded.
#[derive(Debug)]
pub struct Batch {
    shard: usize,
    ready_us: u64,
    reqs: Vec<Request>,
}

impl Batch {
    /// The shard whose queue this batch drained.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Close time (µs): the cap-filling arrival, or the oldest
    /// request's arrival plus the deadline.
    pub fn ready_us(&self) -> u64 {
        self.ready_us
    }

    /// Number of requests (the ragged batch size).
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// True when the batch holds no requests (never dispatched).
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    /// The member requests, in FCFS order.
    pub fn reqs(&self) -> &[Request] {
        &self.reqs
    }
}

/// The coalescing request queue. See the module docs for the policy.
#[derive(Debug)]
pub struct Batcher {
    cfg: BatcherConfig,
    queues: Vec<VecDeque<Request>>,
    /// Recycled pixel buffers (sized through `scratch`, hence counted).
    slot_pool: Vec<Vec<f32>>,
    /// Recycled batch request-lists (capacity events in `list_stats`).
    list_pool: Vec<Vec<Request>>,
    scratch: TrainScratch,
    list_stats: ScratchStats,
    next_id: u64,
}

impl Batcher {
    /// An empty batcher.
    ///
    /// # Panics
    /// Panics if `shards`, `batch_cap` or `deadline_us` is zero.
    pub fn new(cfg: BatcherConfig) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.batch_cap > 0, "batch cap must be positive");
        assert!(cfg.deadline_us > 0, "deadline must be positive");
        Self {
            cfg,
            queues: (0..cfg.shards).map(|_| VecDeque::new()).collect(),
            slot_pool: Vec::new(),
            list_pool: Vec::new(),
            scratch: TrainScratch::default(),
            list_stats: ScratchStats::default(),
            next_id: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> BatcherConfig {
        self.cfg
    }

    /// Pooled allocation counters: pixel-slot sizing plus request-list
    /// capacity events. Steady state leaves `allocations()` unchanged.
    pub fn stats(&self) -> ScratchStats {
        add_stats(self.scratch.stats(), self.list_stats)
    }

    /// Requests currently queued across all shards.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Earliest `(deadline, shard)` over shards with queued requests —
    /// the next timer the engine must honor. Ties on the deadline break
    /// toward the smaller shard id.
    pub fn next_deadline(&self) -> Option<(u64, usize)> {
        let mut best: Option<(u64, usize)> = None;
        for (shard, q) in self.queues.iter().enumerate() {
            if let Some(head) = q.front() {
                let cand = (head.arrival_us + self.cfg.deadline_us, shard);
                best = Some(match best {
                    Some(b) if b <= cand => b,
                    _ => cand,
                });
            }
        }
        best
    }

    /// Enqueues a request arriving at `now_us` on `shard`, its payload
    /// written by `fill` into a pooled buffer. Returns the request id
    /// and the batch this arrival closed, if it filled the shard's
    /// queue to the cap (`ready time = now_us`).
    ///
    /// The caller must fire due deadlines (`close_due`) before
    /// submitting; at an exact tie the deadline batch closes first and
    /// the new arrival starts the next batch.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn submit(
        &mut self,
        now_us: u64,
        shard: usize,
        fill: &mut dyn FnMut(&mut [f32]),
    ) -> (u64, Option<Batch>) {
        assert!(shard < self.cfg.shards, "shard {shard} out of range");
        let id = self.next_id;
        self.next_id += 1;
        let mut pixels = self.take_slot();
        fill(&mut pixels);
        self.queues[shard].push_back(Request {
            id,
            arrival_us: now_us,
            pixels,
        });
        let closed = if self.queues[shard].len() >= self.cfg.batch_cap {
            Some(self.close(shard, now_us))
        } else {
            None
        };
        (id, closed)
    }

    /// Closes the earliest due batch (deadline ≤ `now_us`), if any, in
    /// `(deadline, shard)` order. Call repeatedly until `None`.
    pub fn close_due(&mut self, now_us: u64) -> Option<Batch> {
        let (deadline, shard) = self.next_deadline()?;
        if deadline > now_us {
            return None;
        }
        Some(self.close(shard, deadline))
    }

    /// Force-closes the earliest pending batch at its (possibly future)
    /// deadline — the end-of-run drain, preserving the same total order.
    pub fn close_next(&mut self) -> Option<Batch> {
        let (deadline, shard) = self.next_deadline()?;
        Some(self.close(shard, deadline))
    }

    /// Drains up to `batch_cap` FCFS requests of `shard` into a pooled
    /// batch closing at `ready_us`.
    fn close(&mut self, shard: usize, ready_us: u64) -> Batch {
        let take = self.queues[shard].len().min(self.cfg.batch_cap);
        debug_assert!(take > 0, "closing an empty shard queue");
        // Reserve the full cap, not the ragged size: every recycled list
        // then has identical capacity, so any pooled list fits any
        // future batch (a mixed-capacity pool would hit Grown events at
        // steady state whenever a big batch popped a small list).
        let mut reqs = self.take_list(self.cfg.batch_cap);
        for _ in 0..take {
            if let Some(r) = self.queues[shard].pop_front() {
                reqs.push(r);
            }
        }
        Batch {
            shard,
            ready_us,
            reqs,
        }
    }

    /// Returns a dispatched batch's storage to the pools: pixel buffers
    /// and the request list keep their capacity for the next cycle.
    pub fn recycle(&mut self, batch: Batch) {
        let Batch { mut reqs, .. } = batch;
        for req in reqs.drain(..) {
            self.slot_pool.push(req.pixels);
        }
        self.list_pool.push(reqs);
    }

    /// Checks a pixel buffer out of the pool — the one place on the
    /// request path allowed to touch the allocator (pool growth), and
    /// it is counted.
    fn take_slot(&mut self) -> Vec<f32> {
        let mut v = self.slot_pool.pop().unwrap_or_default();
        self.scratch.ensure_f32(&mut v, self.cfg.sample_len);
        v
    }

    /// Checks a request list out of the pool, with capacity for `cap`
    /// entries; capacity events are tallied like `ensure_f32`.
    fn take_list(&mut self, cap: usize) -> Vec<Request> {
        let mut v = self.list_pool.pop().unwrap_or_default();
        v.clear();
        if cap > 0 {
            let growth = if v.capacity() >= cap {
                BufGrowth::Reused
            } else if v.capacity() == 0 {
                BufGrowth::Fresh
            } else {
                BufGrowth::Grown
            };
            v.reserve(cap);
            match growth {
                BufGrowth::Fresh => self.list_stats.fresh += 1,
                BufGrowth::Grown => self.list_stats.grown += 1,
                BufGrowth::Reused => self.list_stats.reused += 1,
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shards: usize, cap: usize, deadline: u64) -> BatcherConfig {
        BatcherConfig {
            shards,
            batch_cap: cap,
            deadline_us: deadline,
            sample_len: 4,
        }
    }

    fn put(b: &mut Batcher, t: u64, shard: usize) -> (u64, Option<Batch>) {
        b.submit(t, shard, &mut |px| px.fill(1.0))
    }

    #[test]
    fn cap_close_fires_on_filling_arrival() {
        let mut b = Batcher::new(cfg(1, 3, 1000));
        assert!(put(&mut b, 10, 0).1.is_none());
        assert!(put(&mut b, 20, 0).1.is_none());
        let batch = put(&mut b, 30, 0).1.into_iter().next();
        let batch = batch.as_ref();
        assert_eq!(batch.map(Batch::len), Some(3));
        assert_eq!(batch.map(Batch::ready_us), Some(30));
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn deadline_close_takes_partial_batch() {
        let mut b = Batcher::new(cfg(1, 8, 100));
        let _ = put(&mut b, 10, 0);
        let _ = put(&mut b, 50, 0);
        assert!(b.close_due(109).is_none(), "deadline is head + 100 = 110");
        let batch = b.close_due(110);
        let batch = batch.as_ref();
        assert_eq!(batch.map(Batch::len), Some(2));
        assert_eq!(batch.map(Batch::ready_us), Some(110));
    }

    #[test]
    fn fcfs_within_shard_and_tie_breaks_by_shard() {
        let mut b = Batcher::new(cfg(2, 8, 100));
        let _ = put(&mut b, 5, 1);
        let _ = put(&mut b, 5, 0);
        let _ = put(&mut b, 6, 1);
        // Both shards share deadline 105; shard 0 closes first.
        let first = b.close_due(105);
        assert_eq!(first.as_ref().map(Batch::shard), Some(0));
        let second = b.close_due(105);
        let ids: Vec<u64> = second
            .as_ref()
            .map(|x| x.reqs().iter().map(Request::id).collect())
            .unwrap_or_default();
        assert_eq!(ids, vec![0, 2], "shard 1 keeps submission order");
    }

    #[test]
    fn recycle_reaches_zero_alloc_steady_state() {
        let mut b = Batcher::new(cfg(1, 4, 100));
        // Warm-up: grow pools to steady size.
        for round in 0..2u64 {
            for i in 0..4 {
                if let (_, Some(batch)) = put(&mut b, round * 1000 + i, 0) {
                    b.recycle(batch);
                }
            }
        }
        let warm = b.stats();
        for round in 2..6u64 {
            for i in 0..4 {
                if let (_, Some(batch)) = put(&mut b, round * 1000 + i, 0) {
                    b.recycle(batch);
                }
            }
        }
        let delta = b.stats().since(&warm);
        assert_eq!(delta.allocations(), 0, "steady-state batching allocated");
        assert!(delta.reused > 0, "counters saw no pool traffic");
    }

    #[test]
    fn queue_never_exceeds_cap_minus_one_after_submit() {
        let mut b = Batcher::new(cfg(1, 3, 1_000_000));
        for t in 0..20 {
            let (_, closed) = put(&mut b, t, 0);
            if let Some(batch) = closed {
                b.recycle(batch);
            }
            assert!(b.pending() < 3);
        }
    }
}
