//! Microbench: executable collectives on the virtual cluster — the
//! Θ(P) round-robin/linear schedule vs the Θ(log P) binomial tree that
//! defines Sync EASGD1. Measures real wall time of the data movement
//! (the simulated-cost contrast is asserted by tests).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use easgd_cluster::{ClusterConfig, CollectiveAlgo, TimeCategory, VirtualCluster};

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_allreduce");
    group.sample_size(20);
    let len = 100_000; // ~LeNet-sized weight vector
    for &ranks in &[2usize, 4, 8] {
        for (name, algo) in [
            ("tree", CollectiveAlgo::Tree),
            ("linear", CollectiveAlgo::Linear),
            ("rabenseifner", CollectiveAlgo::Rabenseifner),
        ] {
            let cfg = ClusterConfig::new(ranks).with_collective(algo);
            group.bench_with_input(BenchmarkId::new(name, ranks), &cfg, |bencher, cfg| {
                bencher.iter(|| {
                    VirtualCluster::run(cfg, |comm| {
                        let x = vec![comm.rank() as f32; len];
                        comm.allreduce_sum(&x, TimeCategory::GpuGpuParam)[0]
                    })
                });
            });
        }
    }
    group.finish();
}

fn bench_p2p_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_p2p");
    group.sample_size(20);
    for &len in &[1_000usize, 100_000] {
        let cfg = ClusterConfig::new(2);
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |bencher, &len| {
            bencher.iter(|| {
                VirtualCluster::run(&cfg, |comm| {
                    if comm.rank() == 0 {
                        comm.send(1, 1, &vec![1.0f32; len], TimeCategory::CpuGpuParam);
                        comm.recv(1, 2, TimeCategory::CpuGpuParam).len()
                    } else {
                        let d = comm.recv(0, 1, TimeCategory::CpuGpuParam);
                        comm.send(0, 2, &d, TimeCategory::CpuGpuParam);
                        d.len()
                    }
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allreduce, bench_p2p_roundtrip);
criterion_main!(benches);
