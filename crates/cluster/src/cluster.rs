//! Cluster construction and the rendezvous machinery behind collectives.

use crate::backend::{self, ClusterBackend, Executor};
use crate::channel;
use crate::comm::{Comm, Message};
use crate::pool::BufferPool;
use easgd_hardware::collective as cost;
use easgd_hardware::net::AlphaBeta;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Which allreduce schedule the cluster charges for (§6.1.1's contrast).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CollectiveAlgo {
    /// Binomial tree: Θ(log P) full-size messages (Sync EASGD1+).
    Tree,
    /// One-at-a-time linear exchange: Θ(P) (the round-robin baseline).
    Linear,
    /// Reduce-scatter + allgather: bandwidth-optimal for large messages.
    Rabenseifner,
}

/// Configuration of a virtual cluster.
///
/// Cheap to share: the only non-`Copy` field (the link model) sits
/// behind an `Arc`, so `Clone`/[`ClusterConfig::handle`] hand out
/// references to one allocation rather than deep copies.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of ranks.
    pub ranks: usize,
    /// Inter-rank link model (shared, not copied, between handles).
    pub link: Arc<AlphaBeta>,
    /// Collective schedule to charge for.
    pub collective: CollectiveAlgo,
    /// Execution substrate hosting the ranks (threads vs events).
    pub backend: ClusterBackend,
    /// Per-fiber stack size for the event backend (ignored by the
    /// thread backend). Lazily committed, so large rank counts cost
    /// virtual address space, not resident memory.
    pub event_stack_bytes: usize,
}

impl ClusterConfig {
    /// `ranks` ranks over FDR InfiniBand with tree collectives, hosted
    /// on the thread-local default backend (threads unless scoped with
    /// [`ClusterBackend::with_default`]).
    pub fn new(ranks: usize) -> Self {
        assert!(ranks > 0, "cluster needs at least one rank");
        Self {
            ranks,
            link: Arc::new(AlphaBeta::fdr_infiniband()),
            collective: CollectiveAlgo::Tree,
            backend: ClusterBackend::default_backend(),
            event_stack_bytes: backend::DEFAULT_EVENT_STACK_BYTES,
        }
    }

    /// Replaces the link model.
    pub fn with_link(mut self, link: AlphaBeta) -> Self {
        self.link = Arc::new(link);
        self
    }

    /// Replaces the collective algorithm.
    pub fn with_collective(mut self, algo: CollectiveAlgo) -> Self {
        self.collective = algo;
        self
    }

    /// Replaces the execution backend.
    pub fn with_backend(mut self, backend: ClusterBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Replaces the event-backend fiber stack size.
    pub fn with_event_stack(mut self, bytes: usize) -> Self {
        self.event_stack_bytes = bytes;
        self
    }

    /// A handle to the same configuration: `Copy` fields plus a shared
    /// reference to the link model. Equivalent to `Clone`, spelled out
    /// so readers (and the payload-copy lint) can see no payload-sized
    /// data is duplicated.
    pub fn handle(&self) -> ClusterConfig {
        ClusterConfig {
            ranks: self.ranks,
            link: Arc::clone(&self.link),
            collective: self.collective,
            backend: self.backend,
            event_stack_bytes: self.event_stack_bytes,
        }
    }
}

/// Operation performed at a rendezvous.
#[derive(Clone, Debug)]
pub(crate) enum CollOp {
    /// Synchronize only.
    Barrier,
    /// Everyone receives root's contribution.
    Broadcast {
        /// Root rank.
        root: usize,
    },
    /// Element-wise sum of all contributions (delivered to every rank;
    /// non-roots of a rooted reduce simply ignore it).
    ReduceSum,
    /// Sum delivered to all, charged as an allreduce.
    AllReduceSum,
    /// Concatenation of all contributions in rank order (gather /
    /// allgather; rooted gathers simply ignore the result on non-roots).
    Concat,
}

struct ResultEntry {
    /// Combined data, in a pool-recycled buffer: readers copy out of it
    /// under the gate lock, and the last reader returns it to the pool.
    data: Vec<f32>,
    time: f64,
    pending_reads: usize,
}

struct GateInner {
    arrived: usize,
    generation: u64,
    /// Per-rank input slots. Persistent across generations (cleared, not
    /// replaced) so a steady-state rendezvous never allocates.
    inputs: Vec<Vec<f32>>,
    times: Vec<f64>,
    results: HashMap<u64, ResultEntry>,
}

/// A reusable all-ranks rendezvous point implementing the synchronizing
/// collectives: the last arriver combines the inputs, prices the
/// operation, and publishes `(result, completion_time)` to everyone.
pub(crate) struct Gate {
    size: usize,
    config: Arc<ClusterConfig>,
    inner: Mutex<GateInner>,
    cv: Condvar,
}

impl Gate {
    /// Locks the gate, recovering from poisoning (a panicked rank's panic
    /// is what surfaces to the caller via the join, not the poison).
    fn lock_inner(&self) -> MutexGuard<'_, GateInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn new(config: Arc<ClusterConfig>) -> Self {
        let size = config.ranks;
        Self {
            size,
            config,
            inner: Mutex::new(GateInner {
                arrived: 0,
                generation: 0,
                inputs: vec![Vec::new(); size],
                times: vec![0.0; size],
                results: HashMap::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn price(&self, op: &CollOp, bytes: usize) -> f64 {
        let p = self.size;
        let link = &self.config.link;
        match op {
            CollOp::Barrier => cost::reduce_tree(link, p, 0),
            CollOp::Broadcast { .. } => match self.config.collective {
                CollectiveAlgo::Linear => cost::linear_exchange(link, p.saturating_sub(1), bytes),
                _ => cost::broadcast_tree(link, p, bytes),
            },
            CollOp::ReduceSum => match self.config.collective {
                CollectiveAlgo::Linear => cost::linear_exchange(link, p.saturating_sub(1), bytes),
                _ => cost::reduce_tree(link, p, bytes),
            },
            CollOp::AllReduceSum => match self.config.collective {
                CollectiveAlgo::Tree => {
                    cost::reduce_tree(link, p, bytes) + cost::broadcast_tree(link, p, bytes)
                }
                CollectiveAlgo::Linear => {
                    2.0 * cost::linear_exchange(link, p.saturating_sub(1), bytes)
                }
                CollectiveAlgo::Rabenseifner => cost::allreduce_rabenseifner(link, p, bytes),
            },
            // Gather: per-rank message sizes differ along the tree; the
            // dominant term is the root receiving (P−1) contributions.
            CollOp::Concat => match self.config.collective {
                CollectiveAlgo::Linear => cost::linear_exchange(link, p.saturating_sub(1), bytes),
                _ => cost::reduce_tree(link, p, bytes),
            },
        }
    }

    /// Enters the rendezvous and writes the combined result into `out`.
    /// Blocks until all `size` ranks have entered with the same `op`,
    /// then returns the simulated completion time.
    ///
    /// Zero-allocation in steady state: the caller's `input` is copied
    /// into a persistent per-rank slot, the last arriver combines into a
    /// buffer recycled through `pool`, every rank copies the result into
    /// its own `out`, and the last reader returns the combine buffer to
    /// the pool. The combine's FP order — accumulator seeded from rank
    /// 0's input, then `+=` in rank order — is pinned by the golden-trace
    /// tests.
    // One parameter per rendezvous ingredient; bundling them into a
    // struct would just move the argument list one call site up.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rendezvous_into(
        &self,
        exec: &Executor,
        pool: &BufferPool,
        rank: usize,
        time_in: f64,
        input: &[f32],
        op: CollOp,
        cost_override: Option<f64>,
        out: &mut Vec<f32>,
    ) -> f64 {
        let mut inner = self.lock_inner();
        let gen = inner.generation;
        inner.times[rank] = time_in;
        let slot = &mut inner.inputs[rank];
        slot.clear();
        if slot.capacity() < input.len() {
            pool.note_external_alloc();
        }
        slot.extend_from_slice(input);
        pool.note_copy(input.len() * 4);
        inner.arrived += 1;
        if inner.arrived == self.size {
            let start = inner.times.iter().cloned().fold(0.0f64, f64::max);
            let bytes = inner.inputs.iter().map(|v| v.len()).max().unwrap_or(0) * 4;
            let data = match &op {
                CollOp::Barrier => Vec::new(),
                CollOp::Broadcast { root } => {
                    let src = &inner.inputs[*root];
                    let mut data = pool.take(src.len());
                    data.extend_from_slice(src);
                    pool.note_copy(src.len() * 4);
                    data
                }
                CollOp::Concat => {
                    let total: usize = inner.inputs.iter().map(|v| v.len()).sum();
                    let mut data = pool.take(total);
                    for r in 0..self.size {
                        data.extend_from_slice(&inner.inputs[r]);
                    }
                    pool.note_copy(total * 4);
                    data
                }
                CollOp::ReduceSum | CollOp::AllReduceSum => {
                    // Accumulator seeded from rank 0, folded in rank order
                    // — the pinned combine order.
                    let mut acc = pool.take(inner.inputs[0].len());
                    acc.extend_from_slice(&inner.inputs[0]);
                    pool.note_copy(acc.len() * 4);
                    for r in 1..self.size {
                        let src = &inner.inputs[r];
                        assert_eq!(
                            src.len(),
                            acc.len(),
                            "collective contributions must have equal length"
                        );
                        for (a, b) in acc.iter_mut().zip(src) {
                            *a += b;
                        }
                    }
                    acc
                }
            };
            let time = start + cost_override.unwrap_or_else(|| self.price(&op, bytes));
            inner.results.insert(
                gen,
                ResultEntry {
                    data,
                    time,
                    pending_reads: self.size,
                },
            );
            for v in inner.inputs.iter_mut() {
                v.clear();
            }
            inner.arrived = 0;
            inner.generation += 1;
            self.cv.notify_all();
            // On the event backend the waiters are parked fibers, not
            // condvar sleepers: mark every sibling runnable again.
            if let Executor::Events(sched) = exec {
                for r in 0..self.size {
                    if r != rank {
                        sched.signal(r);
                    }
                }
            }
        } else {
            match exec {
                Executor::Threads => {
                    while !inner.results.contains_key(&gen) {
                        inner = self.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
                    }
                }
                Executor::Events(sched) => {
                    // Park (yielding the run token) until the last
                    // arriver publishes this generation; re-check on
                    // every wake — a message delivery can signal a
                    // gate-parked rank spuriously.
                    while !inner.results.contains_key(&gen) {
                        drop(inner);
                        sched.park(rank, time_in);
                        inner = self.lock_inner();
                    }
                }
            }
        }
        let entry = inner.results.get_mut(&gen).unwrap();
        out.clear();
        if out.capacity() < entry.data.len() {
            pool.note_external_alloc();
        }
        out.extend_from_slice(&entry.data);
        pool.note_copy(entry.data.len() * 4);
        let time = entry.time;
        entry.pending_reads -= 1;
        if entry.pending_reads == 0 {
            let retired = inner.results.remove(&gen).expect("result entry vanished");
            pool.put(retired.data);
        }
        time
    }
}

/// Shared state of one virtual cluster.
pub(crate) struct Shared {
    pub(crate) config: Arc<ClusterConfig>,
    pub(crate) gate: Gate,
    pub(crate) senders: Vec<channel::Sender<Message>>,
    /// Cluster-wide payload buffer pool (see [`crate::pool`]).
    pub(crate) pool: BufferPool,
    /// How ranks block and wake on this run's backend.
    pub(crate) exec: Executor,
}

/// A virtual cluster: P ranks over a priced interconnect, hosted on
/// the backend named by [`ClusterConfig::backend`].
pub struct VirtualCluster;

impl VirtualCluster {
    /// Runs `f` on every rank and returns the per-rank results in rank
    /// order.
    ///
    /// Each rank receives its own [`Comm`]; real data flows between ranks
    /// through in-memory channels while simulated time is charged per the
    /// cluster's [`ClusterConfig`]. Whether the ranks are preemptive OS
    /// threads or event-scheduled fibers is the backend's business — the
    /// closure cannot tell the difference (see [`crate::backend`]).
    pub fn run<R, F>(config: &ClusterConfig, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        let p = config.ranks;
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = channel::unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let config = Arc::new(config.handle());
        let shared = Arc::new(Shared {
            gate: Gate::new(Arc::clone(&config)),
            exec: config.backend.executor(p),
            config,
            senders,
            pool: BufferPool::new(),
        });
        backend::host(shared, receivers, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TimeCategory;

    #[test]
    fn run_returns_results_in_rank_order() {
        let cfg = ClusterConfig::new(6);
        let out = VirtualCluster::run(&cfg, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let cfg = ClusterConfig::new(5);
        let out = VirtualCluster::run(&cfg, |comm| {
            let x = vec![comm.rank() as f32, 1.0];
            comm.allreduce_sum(&x, TimeCategory::GpuGpuParam)
        });
        for v in out {
            assert_eq!(v, vec![0.0 + 1.0 + 2.0 + 3.0 + 4.0, 5.0]);
        }
    }

    #[test]
    fn broadcast_distributes_root_data() {
        let cfg = ClusterConfig::new(4);
        let out = VirtualCluster::run(&cfg, |comm| {
            let mine = vec![comm.rank() as f32; 3];
            comm.broadcast(2, &mine, TimeCategory::GpuGpuParam)
        });
        for v in out {
            assert_eq!(v, vec![2.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn reduce_delivers_sum() {
        let cfg = ClusterConfig::new(3);
        let out = VirtualCluster::run(&cfg, |comm| {
            comm.reduce_sum(0, &[1.0f32], TimeCategory::GpuGpuParam)
        });
        for v in out {
            assert_eq!(v, vec![3.0]);
        }
    }

    #[test]
    fn collectives_synchronize_clocks() {
        let cfg = ClusterConfig::new(4);
        let times = VirtualCluster::run(&cfg, |comm| {
            // Rank r does r seconds of compute, then a barrier.
            comm.charge(TimeCategory::ForwardBackward, comm.rank() as f64);
            comm.barrier();
            comm.now()
        });
        // Everyone ends at the slowest rank's time + barrier cost.
        let t0 = times[0];
        assert!(t0 >= 3.0);
        for t in &times {
            assert!((t - t0).abs() < 1e-12);
        }
    }

    #[test]
    fn tree_collective_is_cheaper_than_linear() {
        let run_with = |algo| {
            let cfg = ClusterConfig::new(8).with_collective(algo);
            let times = VirtualCluster::run(&cfg, |comm| {
                let x = vec![0.0f32; 250_000]; // 1 MB
                let _ = comm.allreduce_sum(&x, TimeCategory::GpuGpuParam);
                comm.now()
            });
            times[0]
        };
        let tree = run_with(CollectiveAlgo::Tree);
        let linear = run_with(CollectiveAlgo::Linear);
        assert!(
            tree < linear,
            "tree {tree} should beat linear {linear} at P=8"
        );
        // Θ(log P) vs Θ(P): ratio about (2·log₂8)/(2·7) = 3/7.
        let ratio = tree / linear;
        assert!((0.3..0.6).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn consecutive_collectives_reuse_gate() {
        let cfg = ClusterConfig::new(3);
        let out = VirtualCluster::run(&cfg, |comm| {
            let mut acc = 0.0;
            for i in 0..10 {
                let s = comm.allreduce_sum(&[i as f32], TimeCategory::Other);
                acc += s[0];
            }
            acc
        });
        // Σ 3i for i in 0..10 = 3·45 = 135.
        for v in out {
            assert_eq!(v, 135.0);
        }
    }

    #[test]
    fn single_rank_cluster_works() {
        let cfg = ClusterConfig::new(1);
        let out = VirtualCluster::run(&cfg, |comm| {
            let s = comm.allreduce_sum(&[7.0], TimeCategory::Other);
            comm.barrier();
            s[0]
        });
        assert_eq!(out, vec![7.0]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = ClusterConfig::new(0);
    }
}
