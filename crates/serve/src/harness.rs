//! Latency/QPS summarization for open-loop runs.
//!
//! Percentiles use the nearest-rank order statistic on the *exact*
//! per-request latencies (`ceil(q·n)`-th smallest), not interpolation:
//! the number reported is a latency some request actually experienced,
//! and the statistic is a pure function of the completion set — two
//! runs with equal seeds produce bit-equal p50/p99/p999.

use crate::engine::Completion;

/// Latency percentiles and throughput of one measured run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Completed requests.
    pub requests: usize,
    /// Median latency (µs).
    pub p50_us: f64,
    /// 99th-percentile latency (µs).
    pub p99_us: f64,
    /// 99.9th-percentile latency (µs).
    pub p999_us: f64,
    /// Worst observed latency (µs).
    pub max_us: f64,
    /// Sustained throughput: requests per second of logical time, from
    /// first arrival to last completion.
    pub qps: f64,
}

/// The `q`-quantile (0 < q ≤ 1) of pre-sorted latencies by nearest
/// rank: the `ceil(q·n)`-th smallest value.
///
/// # Panics
/// Panics if `sorted_us` is empty or `q` is out of (0, 1].
pub fn percentile_us(sorted_us: &[f64], q: f64) -> f64 {
    assert!(!sorted_us.is_empty(), "no latencies to summarize");
    assert!(q > 0.0 && q <= 1.0, "quantile {q} out of (0, 1]");
    debug_assert!(
        sorted_us.windows(2).all(|w| w[0] <= w[1]),
        "latencies must be sorted"
    );
    let n = sorted_us.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted_us[rank.clamp(1, n) - 1]
}

/// Summarizes a run's completions (any order).
///
/// # Panics
/// Panics if `completions` is empty.
pub fn summarize(completions: &[Completion]) -> LatencySummary {
    assert!(!completions.is_empty(), "no completions to summarize");
    let mut lat: Vec<f64> = completions.iter().map(Completion::latency_us).collect();
    lat.sort_by(f64::total_cmp);
    let first_arrival = completions.iter().map(|c| c.arrival_us).min().unwrap_or(0);
    let last_done = completions
        .iter()
        .map(|c| c.done_us)
        .fold(f64::NEG_INFINITY, f64::max);
    let span_us = last_done - first_arrival as f64;
    let qps = if span_us > 0.0 {
        completions.len() as f64 * 1e6 / span_us
    } else {
        0.0
    };
    LatencySummary {
        requests: completions.len(),
        p50_us: percentile_us(&lat, 0.50),
        p99_us: percentile_us(&lat, 0.99),
        p999_us: percentile_us(&lat, 0.999),
        max_us: lat[lat.len() - 1],
        qps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done(id: u64, arrival_us: u64, done_us: f64) -> Completion {
        Completion {
            id,
            shard: 0,
            arrival_us,
            done_us,
        }
    }

    #[test]
    fn nearest_rank_hits_exact_order_statistics() {
        let lat: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_us(&lat, 0.50), 50.0);
        assert_eq!(percentile_us(&lat, 0.99), 99.0);
        assert_eq!(percentile_us(&lat, 0.999), 100.0);
        assert_eq!(percentile_us(&lat, 1.0), 100.0);
        assert_eq!(percentile_us(&[42.0], 0.5), 42.0);
    }

    #[test]
    fn summary_reports_span_qps_and_tails() {
        // 10 requests, one per ms, each finishing 100 µs after arrival.
        let completions: Vec<Completion> = (0..10)
            .map(|i| done(i, i * 1000, i as f64 * 1000.0 + 100.0))
            .collect();
        let s = summarize(&completions);
        assert_eq!(s.requests, 10);
        assert_eq!(s.p50_us, 100.0);
        assert_eq!(s.max_us, 100.0);
        // Span: first arrival 0 to last completion 9100 µs.
        assert!((s.qps - 10.0 * 1e6 / 9100.0).abs() < 1e-9);
    }

    #[test]
    fn summary_is_order_independent() {
        let mut completions: Vec<Completion> = (0..50)
            .map(|i| done(i, i * 100, i as f64 * 100.0 + 10.0 * (i % 7) as f64 + 50.0))
            .collect();
        let a = summarize(&completions);
        completions.reverse();
        assert_eq!(summarize(&completions), a);
    }
}
